// Package explore is the adversarial interleaving explorer: for a
// schedule and instance it plays the paper's adversary — the
// asynchronous control channel that delivers a round's FlowMods in any
// order — and checks transient security (loop freedom, waypoint
// enforcement, blackhole freedom) after every single delivery event,
// reporting minimized counterexample event traces.
//
// # Order/state duality
//
// Within one round, barriers constrain nothing: the adversary picks an
// arbitrary delivery order, and a property is violated iff some
// *prefix* of some order produces a violating rule state. The rule
// state after a prefix is exactly the set of switches delivered so
// far, so the states reachable by all orders of a round R on top of
// the completed set D are exactly {D ∪ S : S ⊆ R}. Exhaustively
// checking every subset therefore covers every delivery order of the
// round — n! orders collapse to 2^n states. The explorer walks those
// subsets in binary-reflected Gray-code order, in which successive
// subsets differ by exactly one switch: each check is then an
// incremental one-flip re-walk (core.Walker) instead of a fresh walk
// from the source, and an ascending-(size, mask) post-pass over the
// violating subsets recovers the same minimum-size counterexample the
// old ascending-size enumeration reported first. Rounds larger than
// MaxExhaustive fall back to sampling delivery orders: seeded uniform
// permutations plus heavy-tail-biased orders, where per-switch
// delivery times are drawn from a bounded Pareto distribution (the
// PAM'15 rule-install stall model) and the order is their sort — the
// adversary the paper's measurements say hardware actually implements.
// A per-worker transposition table short-circuits states already
// checked by another order, prefix, or round, and rounds themselves
// fan out over Options.Workers with a deterministic merge.
//
// explore complements internal/verify: verify answers "is this
// schedule safe?" as fast as possible (branching walk search, subset
// sampling); explore answers "show me the event trace that breaks it"
// — it produces ordered, minimized delivery traces suitable for
// replay, plus per-event coverage counters, and its timed mode replays
// a schedule on a simclock.Sim under sampled latency distributions so
// a 10k-switch scenario runs in virtual time with a reproducible event
// count.
package explore

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/topo"
)

// Options configures an exploration.
type Options struct {
	// Props is the property set checked after every event. Zero
	// selects the schedule's own guarantees; for schedules that
	// guarantee nothing (one-shot) it selects blackhole + relaxed loop
	// freedom, plus waypoint enforcement when the instance has a
	// waypoint — the explorer's purpose being to show what the
	// baseline breaks.
	Props core.Property

	// MaxExhaustive bounds the round size explored exhaustively (all
	// 2^n reachable states, enumerated in Gray-code order so each
	// check is an incremental one-switch re-walk). Larger rounds are
	// sampled. Default 18; capped at 20.
	MaxExhaustive int

	// Samples is the number of delivery orders drawn per sampled
	// round. Default 256.
	Samples int

	// HeavyTailBias is the fraction of sampled orders whose delivery
	// times are drawn from the heavy-tailed install-latency model
	// (sorted by time) rather than uniform permutations. Default 0.5.
	HeavyTailBias float64

	// Seed pins the sampling RNG; exploration is deterministic in
	// (Seed, Options).
	Seed int64

	// PeerDelays arms the decentralized-execution adversary in the
	// sampled heavy-tail dispatch: every happens-before edge whose
	// endpoints live on different switches pays an additional
	// adversary-chosen peer-ack delay (bounded Pareto, like the install
	// stalls), so acks overtake each other and installs reorder beyond
	// what install latencies alone produce. The reachable state space
	// is unchanged — delayed acks only pick different linear extensions
	// of the same partial order — so exhaustive verdicts and
	// fingerprint state counts are identical with the adversary on or
	// off; only which sampled orders get replayed differs.
	PeerDelays bool

	// Workers bounds the round-exploration worker pool. Rounds are
	// independent work items (each round's pre-state is a function of
	// the schedule alone), so they fan out and merge back by index;
	// the report — including its Fingerprint — is identical for every
	// worker count. Zero selects runtime.GOMAXPROCS(0); 1 forces
	// serial execution.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxExhaustive <= 0 {
		o.MaxExhaustive = 18
	}
	if o.MaxExhaustive > 20 {
		o.MaxExhaustive = 20
	}
	if o.Samples <= 0 {
		o.Samples = 256
	}
	if o.HeavyTailBias <= 0 {
		o.HeavyTailBias = 0.5
	}
	if o.HeavyTailBias > 1 {
		o.HeavyTailBias = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// defaultProps resolves the checked property set (see Options.Props).
func defaultProps(in *core.Instance, s *core.Schedule, props core.Property) core.Property {
	return defaultPropsFor(in, s.Guarantees, props)
}

// Event is one FlowMod taking effect: switch Switch's rule flips from
// old to new during round Round.
type Event struct {
	Round  int
	Switch topo.NodeID
}

// Trace is an ordered sequence of delivery events.
type Trace []Event

// Switches lists the trace's switches in delivery order.
func (t Trace) Switches() []topo.NodeID {
	out := make([]topo.NodeID, len(t))
	for i, e := range t {
		out[i] = e.Switch
	}
	return out
}

func (t Trace) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range t {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "r%d:%d", e.Round, e.Switch)
	}
	b.WriteByte(']')
	return b.String()
}

// Violation is a found counterexample: a minimized delivery trace
// whose replay (on top of the completed earlier rounds) produces a
// rule state violating Violated.
type Violation struct {
	// Round is the in-flight round the adversary attacked.
	Round int
	// Violated is the property set broken by the minimized trace's
	// final state.
	Violated core.Property
	// Trace is the minimized delivery sequence: replaying exactly
	// these events after rounds < Round still violates, and dropping
	// any single event does not (1-minimality).
	Trace Trace
	// Walk is the offending forwarding walk in the violating state.
	Walk topo.Path
	// Updated lists the violating state's in-flight switches
	// (ascending) — the set view of Trace.
	Updated []topo.NodeID
}

func (v *Violation) String() string {
	return fmt.Sprintf("violation{round %d, %s, trace %s, walk %v}", v.Round, v.Violated, v.Trace, v.Walk)
}

// RoundReport is the exploration verdict for one round.
type RoundReport struct {
	Round int
	Size  int
	// Exhaustive: every reachable intra-round state was checked (the
	// verdict is a proof); otherwise Orders sampled orders were
	// replayed event by event.
	Exhaustive bool
	// States counts distinct rule states checked (exhaustive mode).
	States int
	// Orders counts delivery orders replayed (sampled mode).
	Orders int
	// Events counts per-event property checks performed in this round.
	Events int
	// Violation is the minimized counterexample, nil when none found.
	Violation *Violation
}

// Report is the outcome of exploring a schedule.
type Report struct {
	Algorithm  string
	Properties core.Property
	Rounds     []RoundReport

	// MemoHits counts state checks answered from the transposition
	// tables instead of recomputed. Verdicts are pure per state, so
	// hits never change any result — but the count depends on how
	// rounds were partitioned across workers, so it is diagnostic
	// only and deliberately excluded from Fingerprint.
	MemoHits int64
}

// OK reports whether no interleaving violated the checked properties.
func (r *Report) OK() bool {
	for _, rr := range r.Rounds {
		if rr.Violation != nil {
			return false
		}
	}
	return true
}

// Exhaustive reports whether every round was explored exhaustively.
func (r *Report) Exhaustive() bool {
	for _, rr := range r.Rounds {
		if !rr.Exhaustive {
			return false
		}
	}
	return true
}

// Events returns the total number of per-event property checks.
func (r *Report) Events() int {
	n := 0
	for _, rr := range r.Rounds {
		n += rr.Events
	}
	return n
}

// FirstViolation returns the earliest round's counterexample, or nil.
func (r *Report) FirstViolation() *Violation {
	for _, rr := range r.Rounds {
		if rr.Violation != nil {
			return rr.Violation
		}
	}
	return nil
}

// Fingerprint renders the full verdict — per-round mode, coverage
// counters and minimized traces — as one canonical string. Two
// explorations with equal fingerprints made identical decisions; the
// determinism tests compare these across runs.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s props=%s\n", r.Algorithm, r.Properties)
	for _, rr := range r.Rounds {
		fmt.Fprintf(&b, "round=%d size=%d exhaustive=%t states=%d orders=%d events=%d",
			rr.Round, rr.Size, rr.Exhaustive, rr.States, rr.Orders, rr.Events)
		if v := rr.Violation; v != nil {
			fmt.Fprintf(&b, " violation=%s trace=%s walk=%v", v.Violated, v.Trace, v.Walk)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Report) String() string {
	if r.OK() {
		mode := "sampled"
		if r.Exhaustive() {
			mode = "exhaustive"
		}
		return fmt.Sprintf("explore %s %s: ok (%s, %d rounds, %d events)",
			r.Algorithm, r.Properties, mode, len(r.Rounds), r.Events())
	}
	return fmt.Sprintf("explore %s %s: FAIL (%v)", r.Algorithm, r.Properties, r.FirstViolation())
}

// Schedule explores every round of s against the adversary and
// returns the per-round verdicts. The schedule must fit the instance.
//
// Rounds fan out over Options.Workers goroutines: a round's pre-state
// is determined by the schedule alone, so rounds are independent work
// items and their reports merge back by index — the report (and its
// Fingerprint) is bit-identical for every worker count.
func Schedule(in *core.Instance, s *core.Schedule, opts Options) (*Report, error) {
	if err := s.Validate(in); err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	opts = opts.withDefaults()
	props := defaultProps(in, s, opts.Props)
	rep := &Report{Algorithm: s.Algorithm, Properties: props, Rounds: make([]RoundReport, len(s.Rounds))}

	// Materialize each round's (deterministic) pre-round state.
	dones := make([]core.State, len(s.Rounds))
	done := in.NewState()
	for i, round := range s.Rounds {
		dones[i] = in.CloneState(done)
		in.Mark(done, round...)
	}

	workers := opts.Workers
	if workers > len(s.Rounds) {
		workers = len(s.Rounds)
	}
	var memoHits atomic.Int64
	runWorker := func(next *atomic.Int64) {
		sc := newScratch(in)
		for {
			i := int(next.Add(1)) - 1
			if i >= len(s.Rounds) {
				break
			}
			rep.Rounds[i] = sc.exploreRound(dones[i], i, s.Rounds[i], props, opts)
		}
		memoHits.Add(sc.mt.hits)
	}
	var next atomic.Int64
	if workers <= 1 {
		runWorker(&next)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				runWorker(&next)
			}()
		}
		wg.Wait()
	}
	rep.MemoHits = memoHits.Load()
	return rep, nil
}

// scratch is one worker's reusable exploration context: an incremental
// walker, a transposition table shared across all rounds the worker
// handles, and the per-round buffers. Nothing in it escapes to the
// report except freshly allocated violation records.
type scratch struct {
	in    *core.Instance
	w     *core.Walker
	mt    *memo
	idx   []int         // dense node index per round element
	order []topo.NodeID // delivery-order buffer (sampled mode)
	ds    []delivery    // heavy-tail delivery-time buffer
	trace Trace         // running event trace (sampled mode)
}

type delivery struct {
	node topo.NodeID
	at   time.Duration
}

func newScratch(in *core.Instance) *scratch {
	return &scratch{in: in, w: in.NewWalker(), mt: newMemo(in)}
}

// check evaluates props in the walker's current state, through the
// transposition table: a state seen before — by another order, another
// prefix, or another round — is answered from the table.
func (sc *scratch) check(props core.Property) core.Property {
	if v, ok := sc.mt.lookup(sc.w.State()); ok {
		return v
	}
	v := sc.w.Check(props)
	sc.mt.store(sc.w.State(), v)
	return v
}

// memoExhaustiveMax bounds the round size whose exhaustive scan feeds
// the transposition table. Within one Gray-code scan every state is
// distinct — the enumeration itself is the transposition across the
// round's n! delivery orders — so the table only pays off across
// rounds and sampled replays; populating it with 2^n entries from a
// large round would cost more in inserts and memory than cross-round
// hits recover. Small rounds (the common case for the consistent
// schedulers) stay in the table; large ones check directly.
const memoExhaustiveMax = 12

// exploreRound attacks one round: exhaustive Gray-code enumeration
// when it fits the budget, sampled delivery orders otherwise.
func (sc *scratch) exploreRound(done core.State, roundIdx int, round []topo.NodeID, props core.Property, opts Options) RoundReport {
	rr := RoundReport{Round: roundIdx, Size: len(round)}
	if len(round) <= opts.MaxExhaustive {
		rr.Exhaustive = true
		sc.exploreExhaustive(done, roundIdx, round, props, &rr)
		return rr
	}
	sc.exploreSampled(done, roundIdx, round, props, opts, &rr)
	return rr
}

// grayVisit enumerates all 2^n n-bit masks in binary-reflected
// Gray-code order: gray(k) = k XOR k>>1, and successive masks differ
// in exactly one bit — bit trailingZeros(k) on step k. visit receives
// each mask together with the flipped bit (-1 for the initial empty
// mask). n must be at most 30.
func grayVisit(n int, visit func(mask uint32, flipped int)) {
	visit(0, -1)
	for k := uint32(1); k < 1<<uint(n); k++ {
		visit(k^(k>>1), bits.TrailingZeros32(k))
	}
}

// exploreExhaustive checks every subset of round exactly once, walking
// the subset lattice in Gray-code order so each successive state
// differs from the previous by a single switch — which the incremental
// walker repairs in O(changed suffix) instead of a fresh walk from the
// source. Violating masks are collected during the scan and the
// minimum one — ascending (size, mask), the same order the old
// ascending-size enumerator visited — is reported, so the reported
// counterexample is still minimum-size (and therefore 1-minimal: every
// strictly smaller subset was checked and found clean).
func (sc *scratch) exploreExhaustive(done core.State, roundIdx int, round []topo.NodeID, props core.Property, rr *RoundReport) {
	in := sc.in
	n := len(round)
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
	}
	sc.idx = sc.idx[:n]
	for j, v := range round {
		sc.idx[j] = in.NodeIndex(v)
	}
	sc.w.Reset(done)
	useMemo := n <= memoExhaustiveMax
	var (
		found        bool
		bestMask     uint32
		bestSize     int
		bestViolated core.Property
	)
	grayVisit(n, func(mask uint32, flipped int) {
		if flipped >= 0 {
			sc.w.Flip(sc.idx[flipped])
		}
		rr.States++
		rr.Events++
		var violated core.Property
		if useMemo {
			violated = sc.check(props)
		} else {
			violated = sc.w.Check(props)
		}
		if violated == 0 {
			return
		}
		size := bits.OnesCount32(mask)
		if !found || size < bestSize || (size == bestSize && mask < bestMask) {
			found, bestMask, bestSize, bestViolated = true, mask, size, violated
		}
	})
	if !found {
		return
	}
	st := in.CloneState(done)
	trace := make(Trace, 0, bestSize)
	for j, v := range round {
		if bestMask&(1<<uint(j)) != 0 {
			in.Mark(st, v)
			trace = append(trace, Event{Round: roundIdx, Switch: v})
		}
	}
	walk, _ := in.Walk(st)
	rr.Violation = &Violation{
		Round:    roundIdx,
		Violated: bestViolated,
		Trace:    trace,
		Walk:     walk,
		Updated:  in.StateNodes(in.StateOf(trace.Switches()...)),
	}
}

// exploreSampled replays sampled delivery orders of round event by
// event on the incremental walker. The first
// opts.Samples×HeavyTailBias orders are heavy-tail-biased (delivery
// time per switch from a bounded Pareto, order = time sort), the rest
// uniform permutations; all orders derive from opts.Seed and the round
// index alone — never from the worker the round landed on. The first
// violating prefix is minimized before reporting.
func (sc *scratch) exploreSampled(done core.State, roundIdx int, round []topo.NodeID, props core.Property, opts Options, rr *RoundReport) {
	in := sc.in
	rng := rand.New(rand.NewSource(opts.Seed ^ (int64(roundIdx)+1)*0x5851F42D4C957F2D))
	heavy := int(float64(opts.Samples) * opts.HeavyTailBias)
	tail := netem.Pareto{Scale: time.Millisecond, Alpha: 1.1, Cap: 500 * time.Millisecond}
	if cap(sc.order) < len(round) {
		sc.order = make([]topo.NodeID, len(round))
		sc.ds = make([]delivery, len(round))
	}
	order := sc.order[:len(round)]
	// The empty prefix (no event delivered yet) is common to every
	// order; check it once.
	rr.Events++
	sc.w.Reset(done)
	if violated := sc.check(props); violated != 0 {
		rr.Violation = &Violation{Round: roundIdx, Violated: violated, Trace: Trace{}, Walk: sc.w.Path()}
		return
	}
	for s := 0; s < opts.Samples; s++ {
		copy(order, round)
		if s < heavy {
			// Heavy-tail adversary: one stalled switch delivers long
			// after the rest — the orders real switches produce.
			ds := sc.ds[:len(order)]
			for i, v := range order {
				ds[i] = delivery{node: v, at: tail.Sample(rng)}
			}
			sort.SliceStable(ds, func(a, b int) bool { return ds[a].at < ds[b].at })
			for i, d := range ds {
				order[i] = d.node
			}
		} else {
			rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		}
		rr.Orders++
		sc.w.Reset(done)
		sc.trace = sc.trace[:0]
		for _, v := range order {
			sc.w.Flip(in.NodeIndex(v))
			sc.trace = append(sc.trace, Event{Round: roundIdx, Switch: v})
			rr.Events++
			if violated := sc.check(props); violated != 0 {
				min, minViolated := Minimize(in, done, sc.trace, props)
				walk := violatingWalk(in, done, min)
				rr.Violation = &Violation{
					Round:    roundIdx,
					Violated: minViolated,
					Trace:    min,
					Walk:     walk,
					Updated:  in.StateNodes(in.StateOf(min.Switches()...)),
				}
				return
			}
		}
	}
}

// violatingWalk returns the forwarding walk in the state reached by
// replaying trace on top of done.
func violatingWalk(in *core.Instance, done core.State, trace Trace) topo.Path {
	st := in.CloneState(done)
	for _, e := range trace {
		in.Mark(st, e.Switch)
	}
	walk, _ := in.Walk(st)
	return walk
}

// Minimize shrinks a violating trace to a 1-minimal one: replaying the
// result on top of done still violates props, and removing any single
// event makes it pass. It returns the minimized trace and the property
// set its replay violates (which may differ from the original trace's
// — shrinking a loop can surface a blackhole first). The input trace
// must violate; Minimize returns it unchanged (with its violation set)
// when it somehow does not.
func Minimize(in *core.Instance, done core.State, trace Trace, props core.Property) (Trace, core.Property) {
	replay := func(tr Trace) core.Property {
		st := in.CloneState(done)
		for _, e := range tr {
			in.Mark(st, e.Switch)
		}
		return in.CheckState(st, props)
	}
	cur := append(Trace(nil), trace...)
	violated := replay(cur)
	if violated == 0 {
		return cur, 0
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make(Trace, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if v := replay(cand); v != 0 {
				cur, violated, changed = cand, v, true
				break
			}
		}
	}
	return cur, violated
}
