package explore

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/topo"
)

// Plan explores a dependency plan against the ack-driven adversary:
// the asynchronous control channel that lets every issued-but-not-yet-
// confirmed FlowMod take effect in any order, constrained only by the
// plan's happens-before edges. The reachable transient states are
// exactly the DAG's order ideals (down-closed node sets; see
// core.Plan), so:
//
//   - A layered plan's ideals are precisely the round states of its
//     schedule view, and Plan delegates to the round machinery —
//     reports, counters and fingerprints are bit-identical to
//     Schedule on the equivalent round schedule.
//   - A sparse plan is explored as one DAG: every order ideal is
//     enumerated (a DFS over include/exclude decisions whose steps
//     are single-switch flips, driven through the incremental
//     core.Walker) when the ideal space fits the 1<<MaxExhaustive
//     state budget; otherwise sampled linear extensions are replayed
//     event by event — seeded uniform extensions plus heavy-tail-
//     biased ones, where each node's install latency is drawn from
//     the bounded-Pareto stall model and deliveries happen in
//     completion-time order of the simulated ack-driven dispatch.
//
// Violation traces use the node's layer as the Event.Round, and
// minimization removes only maximal elements so every shrunken trace
// stays a reachable (down-closed) state.
// Rollback plans (core.Plan.Reverse) are explored over the shifted
// state space base∖ideal — the walker starts from the installed set
// and flips clear bits — so the same adversary that attacks a forward
// plan attacks its rollback; see verify.Plan for the correspondence.
func Plan(in *core.Instance, p *core.Plan, opts Options) (*Report, error) {
	if err := p.Validate(in); err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	if !p.Rollback {
		if s, ok := p.Schedule(); ok {
			return Schedule(in, s, opts)
		}
	}
	opts = opts.withDefaults()
	props := defaultPropsFor(in, p.Guarantees, opts.Props)
	rep := &Report{Algorithm: p.Algorithm, Properties: props, Rounds: make([]RoundReport, 1)}
	sc := newScratch(in)
	rep.Rounds[0] = sc.explorePlan(p, props, opts)
	rep.MemoHits = sc.mt.hits
	return rep, nil
}

// defaultPropsFor resolves the checked property set from explicit
// props, falling back to the plan/schedule guarantees and then the
// instance's natural property set (see Options.Props).
func defaultPropsFor(in *core.Instance, guarantees, props core.Property) core.Property {
	if props != 0 {
		return props
	}
	if guarantees != 0 {
		return guarantees
	}
	p := core.NoBlackhole | core.RelaxedLoopFreedom
	if in.Waypoint != 0 {
		p |= core.WaypointEnforcement
	}
	return p
}

// explorePlan attacks a sparse plan's whole DAG as one round report:
// exhaustive ideal enumeration when it fits the budget, sampled
// linear extensions otherwise.
func (sc *scratch) explorePlan(p *core.Plan, props core.Property, opts Options) RoundReport {
	rr := RoundReport{Round: 0, Size: p.NumNodes()}
	if p.NumNodes() <= 64 && sc.explorePlanExhaustive(p, props, opts, &rr) {
		rr.Exhaustive = true
		return rr
	}
	// Budget exceeded (or >64 nodes): discard partial counters and
	// fall back to sampling.
	rr = RoundReport{Round: 0, Size: p.NumNodes()}
	sc.explorePlanSampled(p, props, opts, &rr)
	return rr
}

// explorePlanExhaustive enumerates every order ideal of the plan,
// checking the walker after each single-node step, and reports the
// minimum violating ideal by ascending (size, node-index mask). A
// minimum-size violating ideal is 1-minimal among reachable states:
// every strictly smaller ideal was checked clean, and removing a
// maximal element yields exactly such an ideal. It reports false when
// the 1<<MaxExhaustive state budget was exceeded (rr is then partial
// and must be discarded).
func (sc *scratch) explorePlanExhaustive(p *core.Plan, props core.Property, opts Options, rr *RoundReport) bool {
	in := sc.in
	n := p.NumNodes()
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
	}
	sc.idx = sc.idx[:n]
	for i, nd := range p.Nodes {
		sc.idx[i] = in.NodeIndex(nd.Switch)
	}
	var base core.State // nil for forward plans
	if p.Rollback {
		base = p.BaseState(in)
	}
	sc.w.Reset(base)
	budget := 1 << uint(opts.MaxExhaustive)
	useMemo := n <= memoExhaustiveMax
	var (
		cur          uint64
		found        bool
		bestMask     uint64
		bestSize     int
		bestViolated core.Property
	)
	complete := p.VisitIdeals(
		func(node int, on bool) {
			sc.w.Flip(sc.idx[node])
			if on {
				cur |= 1 << uint(node)
			} else {
				cur &^= 1 << uint(node)
			}
		},
		func() bool {
			if rr.States >= budget {
				return false
			}
			rr.States++
			rr.Events++
			var violated core.Property
			if useMemo {
				violated = sc.check(props)
			} else {
				violated = sc.w.Check(props)
			}
			if violated != 0 {
				size := bits.OnesCount64(cur)
				if !found || size < bestSize || (size == bestSize && cur < bestMask) {
					found, bestMask, bestSize, bestViolated = true, cur, size, violated
				}
			}
			return true
		})
	if !complete {
		return false
	}
	if found {
		rr.Violation = planViolation(in, p, bestMask, bestViolated)
	}
	return true
}

// planViolation materializes the violating ideal given by mask: the
// trace delivers its nodes in topological (index) order, each event
// tagged with the node's layer.
func planViolation(in *core.Instance, p *core.Plan, mask uint64, violated core.Property) *Violation {
	layers := planLayers(p)
	trace := make(Trace, 0, bits.OnesCount64(mask))
	sw := make([]topo.NodeID, 0, bits.OnesCount64(mask))
	for i, nd := range p.Nodes {
		if mask&(1<<uint(i)) != 0 {
			sw = append(sw, nd.Switch)
			trace = append(trace, Event{Round: layers[i], Switch: nd.Switch})
		}
	}
	st := planTraceState(in, p, sw)
	walk, _ := in.Walk(st)
	return &Violation{
		Round:    0,
		Violated: violated,
		Trace:    trace,
		Walk:     walk,
		Updated:  in.StateNodes(st),
	}
}

// planTraceState returns the network state after delivering the given
// switches: marked for a forward plan, base minus the switches for a
// rollback plan (whose ideals count *uninstalled* nodes).
func planTraceState(in *core.Instance, p *core.Plan, sw []topo.NodeID) core.State {
	if !p.Rollback {
		return in.StateOf(sw...)
	}
	st := p.BaseState(in)
	for _, v := range sw {
		if i := in.NodeIndex(v); i >= 0 {
			st.Clear(i)
		}
	}
	return st
}

// planLayers returns each node's layer (longest dependency chain).
func planLayers(p *core.Plan) []int {
	layers := make([]int, len(p.Nodes))
	for i, nd := range p.Nodes {
		l := 0
		for _, d := range nd.Deps {
			if layers[d]+1 > l {
				l = layers[d] + 1
			}
		}
		layers[i] = l
	}
	return layers
}

// explorePlanSampled replays sampled linear extensions of the plan on
// the incremental walker, checking after every event. The first
// Samples×HeavyTailBias extensions are heavy-tail-biased: the
// ack-driven dispatch is simulated with per-node install latencies
// from the bounded Pareto stall model (issue = latest dependency ack,
// delivery order = completion-time order); the rest draw uniformly
// random ready nodes via core.PlanRun. All draws derive from
// opts.Seed alone.
func (sc *scratch) explorePlanSampled(p *core.Plan, props core.Property, opts Options, rr *RoundReport) {
	in := sc.in
	n := p.NumNodes()
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5E3779B97F4A7C15))
	heavy := int(float64(opts.Samples) * opts.HeavyTailBias)
	tail := netem.Pareto{Scale: time.Millisecond, Alpha: 1.1, Cap: 500 * time.Millisecond}
	layers := planLayers(p)
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
	}
	sc.idx = sc.idx[:n]
	for i, nd := range p.Nodes {
		sc.idx[i] = in.NodeIndex(nd.Switch)
	}

	run := core.NewPlanRun(p)
	ready := make([]int, 0, n)
	order := make([]int, 0, n)
	finish := make([]time.Duration, n)
	var base core.State // nil for forward plans
	if p.Rollback {
		base = p.BaseState(in)
	}

	// The empty ideal is common to every extension; check it once.
	rr.Events++
	sc.w.Reset(base)
	if violated := sc.check(props); violated != 0 {
		rr.Violation = &Violation{Round: 0, Violated: violated, Trace: Trace{}, Walk: sc.w.Path()}
		return
	}
	for s := 0; s < opts.Samples; s++ {
		order = order[:0]
		if s < heavy {
			// Heavy-tail adversary: simulate the ack-driven dispatch
			// under Pareto install stalls; one stalled node delays
			// exactly its dependents, and deliveries land in
			// completion-time order. With PeerDelays armed, every
			// cross-switch dependency ack additionally pays an
			// adversary-chosen delay on its way between the switches
			// (the decentralized executor's peer messages), so a node's
			// release time is the latest delayed ack, not the latest
			// finish.
			for i, nd := range p.Nodes {
				issue := time.Duration(0)
				for _, d := range nd.Deps {
					at := finish[d]
					if opts.PeerDelays && p.Nodes[d].Switch != nd.Switch {
						at += tail.Sample(rng)
					}
					if at > issue {
						issue = at
					}
				}
				finish[i] = issue + tail.Sample(rng)
				order = append(order, i)
			}
			sort.SliceStable(order, func(a, b int) bool { return finish[order[a]] < finish[order[b]] })
		} else {
			ready = run.Reset(ready[:0])
			for len(ready) > 0 {
				k := rng.Intn(len(ready))
				i := ready[k]
				ready[k] = ready[len(ready)-1]
				ready = run.Complete(i, ready[:len(ready)-1])
				order = append(order, i)
			}
		}
		rr.Orders++
		sc.w.Reset(base)
		sc.trace = sc.trace[:0]
		for _, i := range order {
			sc.w.Flip(sc.idx[i])
			sc.trace = append(sc.trace, Event{Round: layers[i], Switch: p.Nodes[i].Switch})
			rr.Events++
			if violated := sc.check(props); violated != 0 {
				min, minViolated := MinimizePlan(in, p, sc.trace, props)
				st := planTraceState(in, p, min.Switches())
				walk, _ := in.Walk(st)
				rr.Violation = &Violation{
					Round:    0,
					Violated: minViolated,
					Trace:    min,
					Walk:     walk,
					Updated:  in.StateNodes(st),
				}
				return
			}
		}
	}
}

// MinimizePlan shrinks a violating plan trace while keeping it a
// reachable state: only events that are maximal within the trace — no
// later kept event depends on them — may be dropped, so the surviving
// set stays down-closed. The result still violates props, and
// dropping any single maximal event makes it pass (1-minimality over
// the plan's reachable states).
func MinimizePlan(in *core.Instance, p *core.Plan, trace Trace, props core.Property) (Trace, core.Property) {
	nodeIdx := make(map[topo.NodeID]int, len(p.Nodes))
	for i, nd := range p.Nodes {
		nodeIdx[nd.Switch] = i
	}
	replay := func(tr Trace) core.Property {
		sw := make([]topo.NodeID, len(tr))
		for i, e := range tr {
			sw[i] = e.Switch
		}
		return in.CheckState(planTraceState(in, p, sw), props)
	}
	cur := append(Trace(nil), trace...)
	violated := replay(cur)
	if violated == 0 {
		return cur, 0
	}
	maximal := func(tr Trace, i int) bool {
		v := nodeIdx[tr[i].Switch]
		for j, e := range tr {
			if j == i {
				continue
			}
			for _, d := range p.Nodes[nodeIdx[e.Switch]].Deps {
				if d == v {
					return false
				}
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			if !maximal(cur, i) {
				continue
			}
			cand := make(Trace, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if v := replay(cand); v != 0 {
				cur, violated, changed = cand, v, true
				break
			}
		}
	}
	return cur, violated
}
