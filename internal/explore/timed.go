package explore

import (
	"fmt"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/simclock"
)

// TimedOptions configures a timed virtual-time replay.
type TimedOptions struct {
	// Ctrl models the control-channel latency per FlowMod; nil means
	// instantaneous.
	Ctrl netem.Latency
	// Install models the rule-installation latency per FlowMod; nil
	// means instantaneous.
	Install netem.Latency
	// Barrier models the round-closing barrier exchange; nil means
	// instantaneous.
	Barrier netem.Latency
	// Props is the property set checked after every delivery (zero:
	// same resolution as Options.Props).
	Props core.Property
	// Seed pins the latency samples; the run is deterministic in
	// (Seed, TimedOptions).
	Seed int64
	// RecordLog captures one line per delivery event into
	// TimedReport.Log (costs memory on large runs; off by default).
	RecordLog bool
}

// TimedReport is the outcome of one timed replay.
type TimedReport struct {
	Algorithm  string
	Properties core.Property
	// Events counts delivery events executed (= property checks).
	Events int
	// Rounds is the schedule's round count.
	Rounds int
	// Makespan is the virtual time from first FlowMod to last barrier.
	Makespan time.Duration
	// Violations counts events whose post-state violated Properties.
	Violations int
	// First is the first violating event's minimized trace, nil when
	// the run was clean.
	First *Violation
	// Log holds one line per event when TimedOptions.RecordLog is set.
	Log []string
}

// Timed replays the schedule on a virtual clock: per round, every
// switch's FlowMod takes effect at now + ctrl + install (sampled per
// switch from the seeded source); the round's barrier closes at the
// slowest delivery plus the barrier latency, and the next round starts
// there — the controller loop of §2 of the paper, in virtual time.
// Transient security is checked after every single delivery event.
// The whole run costs no wall-clock waiting: a 10k-switch scenario is
// bounded by event processing, not by its modelled latencies.
func Timed(in *core.Instance, s *core.Schedule, opts TimedOptions) (*TimedReport, error) {
	if err := s.Validate(in); err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	props := defaultProps(in, s, opts.Props)
	sim := simclock.NewSim(time.Time{})
	src := netem.NewSourceClock(opts.Seed, sim)
	rep := &TimedReport{Algorithm: s.Algorithm, Properties: props, Rounds: s.NumRounds()}

	st := in.NewState()
	start := sim.Now()
	base := time.Duration(0)
	for r, round := range s.Rounds {
		roundEnd := base
		for _, v := range round {
			v := v
			at := base + src.Sample(opts.Ctrl) + src.Sample(opts.Install)
			if at > roundEnd {
				roundEnd = at
			}
			r := r
			sim.Schedule(at, func() {
				in.Mark(st, v)
				rep.Events++
				violated := in.CheckState(st, props)
				if violated != 0 {
					rep.Violations++
					if rep.First == nil {
						done := s.StateAfter(in, r)
						// The in-flight set at this instant is the
						// violating trace; minimize it for the report.
						var trace Trace
						for _, w := range round {
							if in.Updated(st, w) && !in.Updated(done, w) {
								trace = append(trace, Event{Round: r, Switch: w})
							}
						}
						min, minViolated := Minimize(in, done, trace, props)
						rep.First = &Violation{
							Round:    r,
							Violated: minViolated,
							Trace:    min,
							Walk:     violatingWalk(in, done, min),
							Updated:  in.StateNodes(in.StateOf(min.Switches()...)),
						}
					}
				}
				if opts.RecordLog {
					rep.Log = append(rep.Log, fmt.Sprintf("t=%v round=%d sw=%d violated=%s",
						sim.Now().Sub(simclock.Epoch), r, v, violated))
				}
			})
		}
		base = roundEnd + src.Sample(opts.Barrier)
	}
	sim.Run()
	rep.Makespan = sim.Now().Sub(start)
	if rep.Makespan < base {
		rep.Makespan = base // barrier tail after the last delivery
	}
	return rep, nil
}
