package explore

import (
	"testing"

	"tsu/internal/core"
	"tsu/internal/topo"
)

// TestExploreRollbackPlan runs the interleaving explorer over reverse
// plans: the rollback of any installed prefix of a verified plan must
// survive every delivery interleaving, and the rollback of an unsafe
// one-shot prefix must produce a counterexample trace.
func TestExploreRollbackPlan(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	p := core.PlanFromSchedule(sched)
	for _, prefix := range []int{len(p.Nodes), len(p.Nodes) / 2} {
		installed := make([]bool, len(p.Nodes))
		for i := 0; i < prefix; i++ {
			installed[i] = true
		}
		rev, _, err := p.Reverse(installed)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Plan(in, rev, Options{Props: sched.Guarantees})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("rollback of prefix %d violated under exploration: %v", prefix, rep.Rounds)
		}
		if !rep.Exhaustive() {
			t.Fatalf("rollback of prefix %d not explored exhaustively", prefix)
		}
	}

	// One-shot: the unordered rollback must break under some
	// interleaving, with a minimized trace over rollback switches.
	props := core.NoBlackhole | core.RelaxedLoopFreedom | core.WaypointEnforcement
	os := core.PlanFromSchedule(core.OneShot(in))
	installed := make([]bool, len(os.Nodes))
	for i := range installed {
		installed[i] = true
	}
	rev, _, err := os.Reverse(installed)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Plan(in, rev, Options{Props: props})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Skip("one-shot rollback unexpectedly safe on this instance")
	}
	for _, rr := range rep.Rounds {
		if rr.Violation == nil {
			continue
		}
		if len(rr.Violation.Trace) == 0 {
			t.Fatal("violation carries an empty trace")
		}
		covered := make(map[topo.NodeID]bool, len(rev.Nodes))
		for _, nd := range rev.Nodes {
			covered[nd.Switch] = true
		}
		for _, e := range rr.Violation.Trace {
			if !covered[e.Switch] {
				t.Fatalf("violation trace names switch %d outside the rollback plan", e.Switch)
			}
		}
	}
}
