package explore

import (
	"reflect"
	"testing"

	"tsu/internal/core"
	"tsu/internal/verify"
)

// TestDecentralizedBitIdentical is the decentralized-execution
// equivalence contract, pinned for every registered scheduler on Fig.1
// (with and without waypoint) and a seeded fat-tree reroute, for both
// the layered and the sparse plan shape:
//
//	(a) Partition/AssemblePlan is lossless: shipping a plan to the
//	    switches as per-switch partitions and reassembling it yields
//	    the identical DAG — the happens-before edges, not the ack
//	    relayer, define the partial order, so the reachable transient
//	    states (order ideals) are unchanged by decentralization.
//	(b) The verifier's verdict on the reassembled plan is bit-identical
//	    to the original's.
//	(c) The explorer's fingerprint is bit-identical with the peer-delay
//	    adversary armed or not: exhaustively, because the ideal space
//	    is delay-independent; sampled, because delayed acks only select
//	    different linear extensions of the same partial order, every
//	    one of which a clean plan survives.
func TestDecentralizedBitIdentical(t *testing.T) {
	for caseName, in := range planTestInstances(t) {
		for _, name := range core.Names() {
			for _, sparse := range []bool{false, true} {
				label := "layered"
				if sparse {
					label = "sparse"
				}
				t.Run(caseName+"/"+name+"/"+label, func(t *testing.T) {
					p, err := core.PlanByName(in, name, 0, sparse)
					if err != nil {
						t.Skipf("%s declined: %v", name, err)
					}

					// (a) Partition round trip is the identity.
					rebuilt, err := core.AssemblePlan(p.Partition())
					if err != nil {
						t.Fatalf("reassembling partitions: %v", err)
					}
					if !reflect.DeepEqual(rebuilt, p) {
						t.Fatalf("partition round trip diverged:\n got %+v\nwant %+v", rebuilt, p)
					}

					// (b) Verifier verdicts: bit-identical reports on the
					// reassembled plan.
					vopts := verify.Options{Seed: 7}
					va := verify.Plan(in, p, p.Guarantees, vopts)
					vb := verify.Plan(in, rebuilt, p.Guarantees, vopts)
					if va.String() != vb.String() || va.OK() != vb.OK() || va.Exact() != vb.Exact() {
						t.Fatalf("verifier diverged:\n original    %s\n reassembled %s", va, vb)
					}

					// (c) Explorer fingerprints, exhaustive: the peer-delay
					// adversary cannot change the enumerated ideal space.
					base := Options{Seed: 11, MaxExhaustive: 14}
					adv := base
					adv.PeerDelays = true
					ra, err := Plan(in, p, base)
					if err != nil {
						t.Fatal(err)
					}
					rb, err := Plan(in, rebuilt, adv)
					if err != nil {
						t.Fatal(err)
					}
					if ra.Fingerprint() != rb.Fingerprint() {
						t.Fatalf("exhaustive fingerprint diverged under peer delays:\n off:\n%s\n on:\n%s",
							ra.Fingerprint(), rb.Fingerprint())
					}

					// (c') Sampled: force the sampling path with a tiny
					// exhaustive budget; verdict and counters must agree.
					sbase := Options{Seed: 11, MaxExhaustive: 1, Samples: 64}
					sadv := sbase
					sadv.PeerDelays = true
					sa, err := Plan(in, p, sbase)
					if err != nil {
						t.Fatal(err)
					}
					sb, err := Plan(in, rebuilt, sadv)
					if err != nil {
						t.Fatal(err)
					}
					if sa.OK() != sb.OK() {
						t.Fatalf("sampled verdict diverged under peer delays: off=%t on=%t", sa.OK(), sb.OK())
					}
					if sa.OK() && sa.Fingerprint() != sb.Fingerprint() {
						t.Fatalf("sampled fingerprint diverged under peer delays:\n off:\n%s\n on:\n%s",
							sa.Fingerprint(), sb.Fingerprint())
					}
				})
			}
		}
	}
}
