package explore

import (
	"math/rand"
	"testing"

	"tsu/internal/core"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

// planTestInstances returns the pinned equivalence instances: the
// paper's Fig.1 update (with and without waypoint) and a seeded random
// fat-tree reroute.
func planTestInstances(t *testing.T) map[string]*core.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(12))
	ft := topo.FatTree(4)
	var ftInstance *core.Instance
	for ftInstance == nil || ftInstance.NumPending() == 0 {
		ti, err := topo.RandomFatTreePolicy(rng, ft)
		if err != nil {
			t.Fatal(err)
		}
		ftInstance = core.MustInstance(ti.Old, ti.New, 0)
	}
	return map[string]*core.Instance{
		"fig1":      core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint),
		"fig1-nowp": core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, 0),
		"fattree":   ftInstance,
	}
}

// TestLayeredPlanBitIdentical is the plan↔schedule equivalence
// contract, pinned for every registered scheduler on Fig.1 and a
// fat-tree instance: converting the scheduler's rounds to a layered
// plan must yield (a) the identical reachable-state set, (b) the
// identical verifier report, and (c) the bit-identical explorer
// fingerprint — layered plans ARE round semantics.
func TestLayeredPlanBitIdentical(t *testing.T) {
	for caseName, in := range planTestInstances(t) {
		for _, name := range core.Names() {
			t.Run(caseName+"/"+name, func(t *testing.T) {
				scheduler := core.MustScheduler(name)
				if !scheduler.Applicable(in) {
					t.Skipf("%s not applicable", name)
				}
				s, err := scheduler.Schedule(in, 0)
				if err != nil {
					t.Skipf("%s declined: %v", name, err)
				}
				p := core.PlanFromSchedule(s)

				// (a) Reachable states: the plan's order ideals are the
				// schedule's round states.
				wantStates := roundStates(in, s)
				gotStates := map[string]bool{}
				for _, st := range p.IdealStates(in) {
					gotStates[stateKey(st)] = true
				}
				if len(gotStates) != len(wantStates) {
					t.Fatalf("reachable states: %d ideals vs %d round states", len(gotStates), len(wantStates))
				}
				for k := range wantStates {
					if !gotStates[k] {
						t.Fatal("round state missing from plan ideals")
					}
				}

				// (b) Verifier verdicts: bit-identical reports.
				vopts := verify.Options{Seed: 7}
				vs := verify.Schedule(in, s, s.Guarantees, vopts)
				vp := verify.Plan(in, p, s.Guarantees, vopts)
				if vs.String() != vp.String() || vs.OK() != vp.OK() || vs.Exact() != vp.Exact() {
					t.Fatalf("verifier diverged:\n schedule %s\n plan     %s", vs, vp)
				}

				// (c) Explorer fingerprints: bit-identical.
				eopts := Options{Seed: 11, MaxExhaustive: 14}
				rs, err := Schedule(in, s, eopts)
				if err != nil {
					t.Fatal(err)
				}
				rp, err := Plan(in, p, eopts)
				if err != nil {
					t.Fatal(err)
				}
				if rs.Fingerprint() != rp.Fingerprint() {
					t.Fatalf("explorer fingerprint diverged:\n schedule:\n%s\n plan:\n%s",
						rs.Fingerprint(), rp.Fingerprint())
				}
			})
		}
	}
}

// roundStates enumerates a schedule's reachable round states keyed by
// stateKey.
func roundStates(in *core.Instance, s *core.Schedule) map[string]bool {
	out := map[string]bool{}
	done := in.NewState()
	for _, round := range s.Rounds {
		for mask := 0; mask < 1<<len(round); mask++ {
			st := in.CloneState(done)
			for j, v := range round {
				if mask&(1<<j) != 0 {
					in.Mark(st, v)
				}
			}
			out[stateKey(st)] = true
		}
		in.Mark(done, round...)
	}
	out[stateKey(done)] = true
	return out
}

func stateKey(st core.State) string {
	b := make([]byte, 0, 8*len(st))
	for _, w := range st {
		for k := 0; k < 8; k++ {
			b = append(b, byte(w>>(8*k)))
		}
	}
	return string(b)
}

// TestQuickPlanScheduleEquivalence property-tests the same contract
// over random two-path instances and every registered scheduler,
// including the waypoint-carrying ones.
func TestQuickPlanScheduleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		ti := topo.RandomTwoPath(rng, 4+rng.Intn(8), trial%2 == 0)
		in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)
		if in.NumPending() == 0 {
			continue
		}
		for _, name := range core.Names() {
			scheduler := core.MustScheduler(name)
			if !scheduler.Applicable(in) {
				continue
			}
			s, err := scheduler.Schedule(in, 0)
			if err != nil {
				continue
			}
			p := core.PlanFromSchedule(s)
			eopts := Options{Seed: int64(trial), MaxExhaustive: 14}
			rs, err := Schedule(in, s, eopts)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := Plan(in, p, eopts)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Fingerprint() != rp.Fingerprint() {
				t.Fatalf("%s on %v: fingerprint diverged", name, in)
			}
			vs := verify.Schedule(in, s, s.Guarantees, verify.Options{Seed: int64(trial)})
			vp := verify.Plan(in, p, s.Guarantees, verify.Options{Seed: int64(trial)})
			if vs.String() != vp.String() {
				t.Fatalf("%s on %v: verifier diverged:\n %s\n %s", name, in, vs, vp)
			}
		}
	}
}

// TestExploreSparsePlanFig1 pins the sparse-plan explorer on the
// Fig.1 Peacock plan: the DAG's full ideal space (45 states — more
// than the 35 round states, since independent chains interleave) is
// enumerated exhaustively and stays clean, and the fingerprint is
// stable.
func TestExploreSparsePlanFig1(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, 0)
	p, err := core.PlanByName(in, core.AlgoPeacock, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Sparse {
		t.Fatalf("expected sparse plan, got %s", p)
	}
	rep, err := Plan(in, p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || !rep.Exhaustive() {
		t.Fatalf("sparse exploration = %s", rep)
	}
	want := "peacock props=NoBlackhole|RelaxedLoopFreedom\n" +
		"round=0 size=7 exhaustive=true states=45 orders=0 events=45\n"
	if got := rep.Fingerprint(); got != want {
		t.Fatalf("fingerprint:\n got  %q\n want %q", got, want)
	}
}

// TestExploreSparsePlanFindsViolation hands the explorer a broken
// sparse plan — Fig.1 with the rule-availability chain edges removed,
// so an old-path switch can flip before its new-only chain has rules
// — and expects a minimized blackhole trace whose events respect the
// remaining dependencies.
func TestExploreSparsePlanFindsViolation(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, 0)
	s, err := core.Peacock(in)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes in schedule order, no edges at all except one (so the plan
	// is not layered and takes the DAG path).
	broken := &core.Plan{Algorithm: "broken", Guarantees: s.Guarantees, Sparse: true}
	for _, round := range s.Rounds {
		for _, v := range round {
			broken.Nodes = append(broken.Nodes, core.PlanNode{Switch: v})
		}
	}
	broken.Nodes[len(broken.Nodes)-1].Deps = []int{0}
	if err := broken.Validate(in); err != nil {
		t.Fatal(err)
	}
	rep, err := Plan(in, broken, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("broken plan explored clean: %s", rep)
	}
	v := rep.FirstViolation()
	if !v.Violated.Has(core.NoBlackhole) {
		t.Fatalf("violated = %s, want a blackhole", v.Violated)
	}
	if len(v.Trace) == 0 {
		t.Fatal("empty violation trace")
	}
	// Verify the plan verifier agrees.
	vrep := verify.Plan(in, broken, s.Guarantees, verify.Options{})
	if vrep.OK() {
		t.Fatalf("verify.Plan passed the broken plan: %s", vrep)
	}
}

// TestMinimizePlanKeepsIdeals pins MinimizePlan's reachability
// contract: shrinking only removes maximal events, so the minimized
// trace stays down-closed under the plan's dependencies — an event a
// kept event depends on survives even when the unconstrained
// minimizer would have dropped it.
func TestMinimizePlanKeepsIdeals(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, 0)
	// Hand-built plan: schedule order [7 8 9 10 11 1 3], the only edge
	// 9 → 3. The trace [9 3] blackholes (3 routes into the rule-less
	// 10); {3} alone also blackholes but is NOT reachable — the plan
	// issues 3 only after 9's barrier — so minimization must keep 9.
	p := &core.Plan{Algorithm: "handmade", Sparse: true}
	order := []topo.NodeID{7, 8, 9, 10, 11, 1, 3}
	for _, v := range order {
		p.Nodes = append(p.Nodes, core.PlanNode{Switch: v})
	}
	p.Nodes[6].Deps = []int{2} // 3 depends on 9
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
	trace := Trace{{Switch: 9}, {Switch: 3}}
	min, violated := MinimizePlan(in, p, trace, core.NoBlackhole)
	if !violated.Has(core.NoBlackhole) {
		t.Fatalf("violated = %s, want NoBlackhole", violated)
	}
	if len(min) != 2 || min[0].Switch != 9 || min[1].Switch != 3 {
		t.Fatalf("minimized = %v, want [9 3] (9 must survive: 3 depends on it)", min)
	}
	// The unconstrained subset minimizer would shrink to the
	// unreachable {3}; pin that MinimizePlan did not.
	unconstrained, _ := Minimize(in, in.NewState(), trace, core.NoBlackhole)
	if len(unconstrained) != 1 {
		t.Fatalf("premise broken: unconstrained minimum = %v", unconstrained)
	}
}
