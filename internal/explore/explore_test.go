package explore

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/topo"
)

// mustSchedule builds a schedule through the registry.
func mustSchedule(t *testing.T, in *core.Instance, algo string) *core.Schedule {
	t.Helper()
	s, err := core.ScheduleByName(in, algo, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertOneMinimal replays the trace with every single event removed
// and requires each reduced replay to be clean — the 1-minimality
// contract of reported counterexamples.
func assertOneMinimal(t *testing.T, in *core.Instance, done core.State, trace Trace, props core.Property) {
	t.Helper()
	replay := func(tr Trace) core.Property {
		st := in.CloneState(done)
		for _, e := range tr {
			in.Mark(st, e.Switch)
		}
		return in.CheckState(st, props)
	}
	if replay(trace) == 0 {
		t.Fatalf("reported trace %s does not violate on replay", trace)
	}
	for i := range trace {
		reduced := make(Trace, 0, len(trace)-1)
		reduced = append(reduced, trace[:i]...)
		reduced = append(reduced, trace[i+1:]...)
		if v := replay(reduced); v != 0 {
			t.Fatalf("trace %s is not minimal: dropping event %d still violates %s", trace, i, v)
		}
	}
}

// TestExploreFig1Pinned pins the explorer's verdict on the paper's
// Figure 1 scenario. The repository's reconstruction routes the new
// policy over fresh switches (s7–s11), so the adversary's attack on
// the unsafe one-shot schedule is a transient blackhole: the minimum
// counterexample is the ingress switch s1 flipping first, sending the
// flow into the rule-less new path. The WayUp schedule survives every
// interleaving of every round.
func TestExploreFig1Pinned(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	props := core.NoBlackhole | core.RelaxedLoopFreedom | core.WaypointEnforcement

	oneshot, err := Schedule(in, mustSchedule(t, in, core.AlgoOneShot), Options{Props: props})
	if err != nil {
		t.Fatal(err)
	}
	if !oneshot.Exhaustive() {
		t.Fatalf("fig1 one-shot round (7 switches) should be explored exhaustively")
	}
	v := oneshot.FirstViolation()
	if v == nil {
		t.Fatal("explorer missed the one-shot violation on Fig.1")
	}
	if !v.Violated.Has(core.NoBlackhole) {
		t.Fatalf("fig1 one-shot violation = %s, want NoBlackhole", v.Violated)
	}
	want := Trace{{Round: 0, Switch: 1}}
	if len(v.Trace) != 1 || v.Trace[0] != want[0] {
		t.Fatalf("fig1 minimized trace = %s, want %s", v.Trace, want)
	}
	if !v.Walk.Equal(topo.Path{1, 7}) {
		t.Fatalf("fig1 violating walk = %v, want [1 7]", v.Walk)
	}
	assertOneMinimal(t, in, in.NewState(), v.Trace, props)

	// The safe schedule on the same instance: no interleaving of any
	// round violates its guarantees (waypoint enforcement, blackhole
	// freedom).
	wayup, err := Schedule(in, mustSchedule(t, in, core.AlgoWayUp), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !wayup.OK() || !wayup.Exhaustive() {
		t.Fatalf("wayup must survive all interleavings exhaustively: %s", wayup)
	}
}

// TestExploreTransientLoopPinned pins the transient forwarding loop —
// the headline failure mode of asynchronous updates (the drawn Fig.1
// permutation is not recoverable from the paper text; the loop lives
// on the path-reversal family). One-shot lets the last switch's rule
// flip first, bouncing packets back along the old path; the explorer
// must return that exact minimized one-event trace. Peacock, the safe
// schedule for relaxed loop freedom, survives every interleaving of
// the same instance.
func TestExploreTransientLoopPinned(t *testing.T) {
	ti := topo.Reversal(6) // old 1..6, new 1,5,4,3,2,6
	in := core.MustInstance(ti.Old, ti.New, 0)

	oneshot, err := Schedule(in, mustSchedule(t, in, core.AlgoOneShot), Options{Props: core.RelaxedLoopFreedom})
	if err != nil {
		t.Fatal(err)
	}
	v := oneshot.FirstViolation()
	if v == nil {
		t.Fatal("explorer missed the transient loop on the reversal instance")
	}
	if v.Violated != core.RelaxedLoopFreedom {
		t.Fatalf("violated = %s, want RelaxedLoopFreedom", v.Violated)
	}
	want := Trace{{Round: 0, Switch: 5}}
	if len(v.Trace) != 1 || v.Trace[0] != want[0] {
		t.Fatalf("minimized loop trace = %s, want %s", v.Trace, want)
	}
	if !v.Walk.Equal(topo.Path{1, 2, 3, 4, 5, 4}) {
		t.Fatalf("loop walk = %v, want [1 2 3 4 5 4]", v.Walk)
	}
	assertOneMinimal(t, in, in.NewState(), v.Trace, core.RelaxedLoopFreedom)

	peacock, err := Schedule(in, mustSchedule(t, in, core.AlgoPeacock), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !peacock.OK() {
		t.Fatalf("peacock must survive all interleavings: %s", peacock)
	}
}

// TestExploreSampledFindsViolation forces the sampling path (round
// larger than MaxExhaustive) and requires it to find, minimize and
// soundly report the loop — including under the heavy-tail-biased
// order model.
func TestExploreSampledFindsViolation(t *testing.T) {
	ti := topo.Reversal(30)
	in := core.MustInstance(ti.Old, ti.New, 0)
	sched := mustSchedule(t, in, core.AlgoOneShot)
	if sched.NumRounds() != 1 || len(sched.Rounds[0]) <= 8 {
		t.Fatalf("unexpected one-shot shape: %s", sched)
	}
	rep, err := Schedule(in, sched, Options{
		Props:         core.RelaxedLoopFreedom,
		MaxExhaustive: 8,
		Samples:       128,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exhaustive() {
		t.Fatal("round of 29 switches must not be explored exhaustively with MaxExhaustive=8")
	}
	v := rep.FirstViolation()
	if v == nil {
		t.Fatal("sampling missed the reversal loop (128 orders)")
	}
	assertOneMinimal(t, in, in.NewState(), v.Trace, core.RelaxedLoopFreedom)
}

// TestExploreSeededDeterminism is the seeded-determinism table: same
// seed ⇒ identical explorer verdicts (fingerprints) and identical
// timed-replay event logs, across repeated in-process runs — and, via
// the CI `-run Explore -count=2` job, across process restarts and
// under -race.
func TestExploreSeededDeterminism(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		n    int
		wp   bool
		algo string
	}{
		{"fig1-oneshot", 7, 0, false, core.AlgoOneShot},
		{"random16-oneshot", 11, 16, true, core.AlgoOneShot},
		{"random40-oneshot-sampled", 23, 40, false, core.AlgoOneShot},
		{"random40-peacock", 23, 40, false, core.AlgoPeacock},
		{"reversal24-oneshot-sampled", 5, 24, false, core.AlgoOneShot},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var in *core.Instance
			switch {
			case tc.n == 0:
				in = core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
			case tc.name[:8] == "reversal":
				ti := topo.Reversal(tc.n)
				in = core.MustInstance(ti.Old, ti.New, 0)
			default:
				rng := rand.New(rand.NewSource(tc.seed))
				ti := topo.RandomTwoPath(rng, tc.n, tc.wp)
				in = core.MustInstance(ti.Old, ti.New, ti.Waypoint)
			}
			if in.NumPending() == 0 {
				t.Skip("degenerate instance")
			}
			sched := mustSchedule(t, in, tc.algo)
			opts := Options{MaxExhaustive: 6, Samples: 64, Seed: tc.seed}
			rep1, err := Schedule(in, sched, opts)
			if err != nil {
				t.Fatal(err)
			}
			rep2, err := Schedule(in, sched, opts)
			if err != nil {
				t.Fatal(err)
			}
			if fp1, fp2 := rep1.Fingerprint(), rep2.Fingerprint(); fp1 != fp2 {
				t.Fatalf("same seed, different verdicts:\n%s\nvs\n%s", fp1, fp2)
			}
			if rep1.Events() == 0 {
				t.Fatal("exploration performed zero event checks")
			}
			// Parallel exploration must merge deterministically: the
			// fingerprint is identical for every worker count,
			// including the serial baseline.
			for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				wopts := opts
				wopts.Workers = workers
				repW, err := Schedule(in, sched, wopts)
				if err != nil {
					t.Fatal(err)
				}
				if fp := repW.Fingerprint(); fp != rep1.Fingerprint() {
					t.Fatalf("workers=%d changed the verdict:\n%s\nvs\n%s", workers, fp, rep1.Fingerprint())
				}
			}

			topts := TimedOptions{
				Ctrl:      netem.Uniform{Min: 0, Max: 3 * time.Millisecond},
				Install:   netem.Pareto{Scale: time.Millisecond, Alpha: 1.5, Cap: 20 * time.Millisecond},
				Barrier:   netem.Fixed(500 * time.Microsecond),
				Seed:      tc.seed,
				RecordLog: true,
			}
			tr1, err := Timed(in, sched, topts)
			if err != nil {
				t.Fatal(err)
			}
			tr2, err := Timed(in, sched, topts)
			if err != nil {
				t.Fatal(err)
			}
			if len(tr1.Log) != len(tr2.Log) {
				t.Fatalf("timed logs differ in length: %d vs %d", len(tr1.Log), len(tr2.Log))
			}
			for i := range tr1.Log {
				if tr1.Log[i] != tr2.Log[i] {
					t.Fatalf("timed log line %d differs:\n%s\nvs\n%s", i, tr1.Log[i], tr2.Log[i])
				}
			}
			if tr1.Events != in.NumPending() {
				t.Fatalf("timed replay executed %d events, want %d (one per pending switch)", tr1.Events, in.NumPending())
			}
			if tr1.Makespan != tr2.Makespan {
				t.Fatalf("timed makespan diverged: %v vs %v", tr1.Makespan, tr2.Makespan)
			}
		})
	}
}

// TestExploreTimedFig1 exercises the timed virtual-clock replay on the
// Fig.1 scenario: the unsafe one-shot run must cross a violating state
// and report a minimized trace; the WayUp run must stay clean in every
// sampled timing.
func TestExploreTimedFig1(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	props := core.NoBlackhole | core.RelaxedLoopFreedom | core.WaypointEnforcement
	opts := TimedOptions{
		Ctrl:    netem.Uniform{Min: 0, Max: 3 * time.Millisecond},
		Install: netem.Uniform{Min: 500 * time.Microsecond, Max: 3 * time.Millisecond},
		Props:   props,
		Seed:    3,
	}
	one, err := Timed(in, mustSchedule(t, in, core.AlgoOneShot), opts)
	if err != nil {
		t.Fatal(err)
	}
	if one.Violations == 0 || one.First == nil {
		t.Fatalf("timed one-shot replay saw no violating state: %+v", one)
	}
	assertOneMinimal(t, in, in.NewState(), one.First.Trace, props)
	if one.Makespan <= 0 {
		t.Fatalf("timed replay has non-positive makespan %v", one.Makespan)
	}

	way, err := Timed(in, mustSchedule(t, in, core.AlgoWayUp), TimedOptions{
		Ctrl:    opts.Ctrl,
		Install: opts.Install,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if way.Violations != 0 {
		t.Fatalf("timed wayup replay violated its guarantees: %+v", way.First)
	}
}

// TestExploreRejectsBadSchedule: structural mismatches surface as
// errors, not as explorations of nonsense.
func TestExploreRejectsBadSchedule(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	bad := &core.Schedule{Algorithm: "bogus", Rounds: [][]topo.NodeID{{2}}}
	if _, err := Schedule(in, bad, Options{}); err == nil {
		t.Fatal("explore accepted a schedule that does not fit the instance")
	}
	if _, err := Timed(in, bad, TimedOptions{}); err == nil {
		t.Fatal("timed replay accepted a schedule that does not fit the instance")
	}
}
