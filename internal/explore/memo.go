package explore

import (
	"encoding/binary"

	"tsu/internal/core"
)

// memoMaxEntries bounds one transposition table's size. Entries are a
// uint64 (or words×8-byte) key plus a one-byte verdict, so the bound
// caps a table at roughly 16 MiB of map footprint; past it the table
// stops inserting and every further state is checked directly — a
// memory bound, never a correctness change.
const memoMaxEntries = 1 << 20

// memo is a transposition table: canonical rule-state fingerprint → the
// property-violation verdict of that exact state. A verdict is a pure
// function of (instance, state, props), so a state reached again — by a
// different delivery order of the same round, by a sampled prefix, or
// by a later round whose completed set happens to reproduce it — is
// answered from the table instead of re-checked.
//
// One memo per worker goroutine (it is not locked): verdicts being
// pure, partitioning the table across workers affects only the hit
// rate, never any verdict, which keeps parallel exploration
// bit-identical to serial.
type memo struct {
	words int
	m1    map[uint64]core.Property // fast path: instances of ≤ 64 nodes
	mk    map[string]core.Property // wide states, keyed by their raw bytes
	key   []byte                   // scratch for building wide keys
	hits  int64
}

func newMemo(in *core.Instance) *memo {
	t := &memo{words: (in.NumNodes() + 63) / 64}
	if t.words <= 1 {
		t.m1 = make(map[uint64]core.Property)
	} else {
		t.mk = make(map[string]core.Property)
		t.key = make([]byte, 8*t.words)
	}
	return t
}

// wideKey serialises st into the scratch key buffer.
func (t *memo) wideKey(st core.State) []byte {
	for i, w := range st {
		binary.LittleEndian.PutUint64(t.key[8*i:], w)
	}
	return t.key
}

// lookup returns the cached verdict for st, if present.
func (t *memo) lookup(st core.State) (core.Property, bool) {
	if t.m1 != nil {
		var k uint64
		if len(st) > 0 {
			k = st[0]
		}
		v, ok := t.m1[k]
		if ok {
			t.hits++
		}
		return v, ok
	}
	v, ok := t.mk[string(t.wideKey(st))] // compiler elides the []byte→string copy for map reads
	if ok {
		t.hits++
	}
	return v, ok
}

// store caches the verdict for st, unless the table is full.
func (t *memo) store(st core.State, v core.Property) {
	if len(t.m1)+len(t.mk) >= memoMaxEntries {
		return
	}
	if t.m1 != nil {
		var k uint64
		if len(st) > 0 {
			k = st[0]
		}
		t.m1[k] = v
		return
	}
	t.mk[string(t.wideKey(st))] = v
}
