package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/topo"
)

// tableRows splits a rendered table into its data rows.
func tableRows(t *testing.T, s string) [][]string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 3 {
		t.Fatalf("table too short:\n%s", s)
	}
	var rows [][]string
	for _, ln := range lines[2:] {
		rows = append(rows, strings.Fields(ln))
	}
	return rows
}

func TestBedLifecycle(t *testing.T) {
	bed, err := NewBed(topo.Fig1(), BedConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer bed.Close()
	if got := len(bed.Ctrl.Datapaths()); got != 12 {
		t.Fatalf("datapaths = %d", got)
	}
	if err := bed.InstallOldPolicy(topo.Fig1OldPath); err != nil {
		t.Fatal(err)
	}
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	job, err := bed.RunUpdateAlgorithm(in, sched.Algorithm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if job.TotalDuration() <= 0 {
		t.Fatal("no duration recorded")
	}
}

func TestE1Fig1(t *testing.T) {
	tbl, err := E1Fig1(7)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(t, tbl.String())
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Row 0 is wayup: zero bypasses/loops/drops.
	if rows[0][0] != "wayup" {
		t.Fatalf("first row: %v", rows[0])
	}
	for col := 4; col <= 6; col++ {
		if rows[0][col] != "0" {
			t.Fatalf("wayup violation column %d = %s (row %v)", col, rows[0][col], rows[0])
		}
	}
	// WayUp uses more than one round; one-shot exactly one.
	if rows[0][1] == "1" {
		t.Fatalf("wayup rounds = %s", rows[0][1])
	}
	if rows[1][1] != "1" {
		t.Fatalf("oneshot rounds = %s", rows[1][1])
	}
}

func TestE3ViolationsShape(t *testing.T) {
	tbl, err := E3Violations(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(t, tbl.String())
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	sawUnsafe := false
	for _, r := range rows {
		oneshot, err := strconv.ParseFloat(r[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		wayup, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if wayup != 0 {
			t.Fatalf("wayup unsafe fraction %v on row %v", wayup, r)
		}
		if oneshot > 0 {
			sawUnsafe = true
		}
	}
	if !sawUnsafe {
		t.Fatal("one-shot never unsafe across all sizes — generator or verifier broken")
	}
}

func TestE4RoundsShape(t *testing.T) {
	tbl, err := E4Rounds(5)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(t, tbl.String())
	if len(rows) != 28 { // 4 families × 7 sizes
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		family := r[0]
		n, _ := strconv.Atoi(r[1])
		peacock, _ := strconv.Atoi(r[2])
		greedy, _ := strconv.Atoi(r[3])
		if peacock <= 0 || greedy <= 0 {
			t.Fatalf("non-positive rounds: %v", r)
		}
		// The PODC'15 shape lives on the nested family: strong loop
		// freedom is forced through a linear dependency chain of
		// backward rules while relaxed loop freedom stays flat.
		if family == "nested" {
			if peacock > 4 {
				t.Fatalf("nested n=%d: peacock rounds %d not flat", n, peacock)
			}
			if wantMin := n / 4; greedy < wantMin {
				t.Fatalf("nested n=%d: greedy-slf rounds %d, want >= %d (linear growth)", n, greedy, wantMin)
			}
		}
		if family == "reversal" && peacock > 3 {
			t.Fatalf("reversal: peacock rounds %d > 3", peacock)
		}
	}
}

func TestE5ComputeRuns(t *testing.T) {
	tbl, err := E5Compute(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tableRows(t, tbl.String())) != 5 {
		t.Fatal("unexpected row count")
	}
}

func TestE9MultiPolicyShape(t *testing.T) {
	tbl, err := E9MultiPolicy(11)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(t, tbl.String())
	if len(rows) != 10 { // 2 substrates × 5 values of k
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		joint, _ := strconv.Atoi(r[2])
		seq, _ := strconv.Atoi(r[3])
		if joint > seq {
			t.Fatalf("joint rounds %d > sequential %d: %v", joint, seq, r)
		}
	}
	// Larger k must not shrink total flowmods (within a substrate).
	first, _ := strconv.Atoi(rows[0][4])
	last, _ := strconv.Atoi(rows[4][4])
	if last <= first {
		t.Fatalf("flowmods did not grow with k: %v → %v", first, last)
	}
}

func TestE6UpdateTimeVsNSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP sweep")
	}
	tbl, err := E6UpdateTimeVsN(13)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(t, tbl.String())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
}

// TestE10VirtualFatTreeExploreReproducible runs the 10k-switch
// virtual-time scenario twice with the same seed and requires the
// identical event count — the reproducibility contract of the virtual
// clock (and the reason E10 can exist at all: the same scenario over
// TCP would take hours). The shape assertions pin the experiment's
// point: one-shot crosses violating transient states at datacenter
// scale, peacock never does.
func TestE10VirtualFatTreeExploreReproducible(t *testing.T) {
	const (
		k        = 90 // 10125 switches
		policies = 64
		seed     = 11
	)
	r1, err := E10VirtualFatTree(k, policies, seed)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := E10VirtualFatTree(k, policies, seed)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Switches != 10125 {
		t.Fatalf("FatTree(90) has %d switches, want 10125", r1.Switches)
	}
	if r1.Events != r2.Events || r1.Events == 0 {
		t.Fatalf("event count not reproducible: %d vs %d", r1.Events, r2.Events)
	}
	if rows := tableRows(t, r1.Table.String()); len(rows) != 2 {
		t.Fatalf("rows = %v, want 2 (peacock, oneshot)", rows)
	}
	if v := r1.Violations[core.AlgoPeacock]; v != 0 {
		t.Fatalf("peacock crossed %d violating transient states", v)
	}
	if v := r1.Violations[core.AlgoOneShot]; v == 0 {
		t.Fatal("one-shot crossed zero violating transient states across 64 reroutes — the adversary vanished")
	}
}

func TestMatchAndConstants(t *testing.T) {
	m := Match()
	if m.NWDstIP().String() != FlowIP {
		t.Fatalf("match dst = %s", m.NWDstIP())
	}
	if FlowNWDst != 0x0a000002 {
		t.Fatal("FlowNWDst constant wrong")
	}
}

func TestBedConfigSeedsDiffer(t *testing.T) {
	// Distinct seeds must produce distinct jitter streams (different
	// per-switch sources); indirectly assert via netem determinism.
	a := netem.NewSource(1*1000003 + 5)
	b := netem.NewSource(2*1000003 + 5)
	dist := netem.Uniform{Min: 0, Max: time.Second}
	same := true
	for i := 0; i < 10; i++ {
		if a.Sample(dist) != b.Sample(dist) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestE13FaultedRollbackReproducible runs the faulted fat-tree
// scenario with one worker and with four and requires identical
// aggregates — the per-instance seeding contract that makes parallel
// fault experiments order-independent — plus the experiment's safety
// invariant: faults happen, updates abort, and every rollback the
// verifier blessed covered the whole dispatched prefix with zero
// refusals.
func TestE13FaultedRollbackReproducible(t *testing.T) {
	const (
		k        = 90 // 10125 switches
		policies = 64
		seed     = 11
	)
	r1, err := E13FaultedRollback(k, policies, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := E13FaultedRollback(k, policies, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Switches != 10125 {
		t.Fatalf("FatTree(90) has %d switches, want 10125", r1.Switches)
	}
	if r1.Events != r4.Events || r1.Events == 0 {
		t.Fatalf("event count depends on worker count: %d vs %d", r1.Events, r4.Events)
	}
	if r1.Faults != r4.Faults || r1.Aborts != r4.Aborts || r1.RolledBack != r4.RolledBack {
		t.Fatalf("aggregates depend on worker count: %+v vs %+v", r1, r4)
	}
	if r1.Faults == 0 || r1.Aborts == 0 {
		t.Fatalf("fault model injected nothing: %+v", r1)
	}
	if r1.RolledBack == 0 {
		t.Fatal("no installs were rolled back")
	}
	if r1.Violations != 0 {
		t.Fatalf("verifier refused %d peacock rollbacks; forward sub-ideal safety is broken", r1.Violations)
	}
	if rows := tableRows(t, r1.Table.String()); len(rows) != 3 {
		t.Fatalf("rows = %v, want 3 fault rates", rows)
	}
}

// TestE14CrashRecoveryReproducible runs the crash-boundary sweep with
// one worker and with four and requires identical aggregates, plus the
// experiment's safety invariants: every boundary resolves (requeue,
// adopt, or rollback — nothing dangles), wipes force some boundaries
// onto the rollback path, and the verifier refuses none of the reverse
// plans (journaled dispatched sets are order ideals, and ideals
// reverse safely).
func TestE14CrashRecoveryReproducible(t *testing.T) {
	const (
		k        = 20 // 500 switches
		policies = 48
		seed     = 11
	)
	r1, err := E14CrashRecovery(k, policies, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := E14CrashRecovery(k, policies, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Switches != 500 {
		t.Fatalf("FatTree(20) has %d switches, want 500", r1.Switches)
	}
	if r1.Events != r4.Events || r1.Events == 0 {
		t.Fatalf("event count depends on worker count: %d vs %d", r1.Events, r4.Events)
	}
	if r1.Boundaries != r4.Boundaries || r1.Adopted != r4.Adopted ||
		r1.RolledBack != r4.RolledBack || r1.Requeued != r4.Requeued {
		t.Fatalf("aggregates depend on worker count: %+v vs %+v", r1, r4)
	}
	if r1.Boundaries != r1.Requeued+r1.Adopted+r1.RolledBack {
		t.Fatalf("boundaries dangle: %d replayed, %d resolved",
			r1.Boundaries, r1.Requeued+r1.Adopted+r1.RolledBack)
	}
	if r1.Requeued == 0 || r1.Adopted == 0 || r1.RolledBack == 0 {
		t.Fatalf("sweep missed a recovery mode: %+v", r1)
	}
	if r1.Violations != 0 {
		t.Fatalf("verifier refused %d recovery rollbacks; ideal-reversal safety is broken", r1.Violations)
	}
	if rows := tableRows(t, r1.Table.String()); len(rows) != 3 {
		t.Fatalf("rows = %v, want 3 wipe rates", rows)
	}
}

// TestE15SoakReproducible runs the combined loss + crash soak (the
// small tier of the 100k-switch experiment) with one worker and with
// eight and requires bit-identical aggregates, plus the soak's safety
// invariants: losses abort some updates, crash wipes force some
// boundaries onto the rollback path, every boundary resolves, the
// write-ahead batches group more than one node per append, and the
// verifier refuses no reverse plan of either flavor.
func TestE15SoakReproducible(t *testing.T) {
	const (
		k        = 24 // 720 switches
		policies = 50
		seed     = 11
	)
	r1, err := E15Soak(k, policies, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := E15Soak(k, policies, seed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Switches != 720 {
		t.Fatalf("FatTree(24) has %d switches, want 720", r1.Switches)
	}
	if r1.Events != r8.Events || r1.Events == 0 {
		t.Fatalf("event count depends on worker count: %d vs %d", r1.Events, r8.Events)
	}
	if r1.PeerAcks != r8.PeerAcks || r1.Aborts != r8.Aborts ||
		r1.Boundaries != r8.Boundaries || r1.Adopted != r8.Adopted ||
		r1.CrashRolledBack != r8.CrashRolledBack || r1.Requeued != r8.Requeued ||
		r1.JournalRecords != r8.JournalRecords || r1.JournalNodes != r8.JournalNodes {
		t.Fatalf("aggregates depend on worker count: %+v vs %+v", r1, r8)
	}
	if r1.Boundaries != r1.Requeued+r1.Adopted+r1.CrashRolledBack {
		t.Fatalf("boundaries dangle: %d swept, %d resolved",
			r1.Boundaries, r1.Requeued+r1.Adopted+r1.CrashRolledBack)
	}
	if r1.Aborts == 0 || r1.LossRolledBack == 0 {
		t.Fatalf("loss model injected nothing: %+v", r1)
	}
	if r1.Adopted == 0 || r1.CrashRolledBack == 0 {
		t.Fatalf("crash sweep missed a recovery mode: %+v", r1)
	}
	if r1.PeerAcks == 0 {
		t.Fatal("decentralized model sent no peer acks")
	}
	if r1.JournalRecords == 0 || r1.JournalNodes <= r1.JournalRecords {
		t.Fatalf("write-ahead batching not observed: %d records for %d nodes",
			r1.JournalRecords, r1.JournalNodes)
	}
	if r1.Violations != 0 {
		t.Fatalf("verifier refused %d rollbacks; the soak's safety invariant is broken", r1.Violations)
	}
	if rows := tableRows(t, r1.Table.String()); len(rows) != 3 {
		t.Fatalf("rows = %v, want 3 rate combos", rows)
	}
}
