// Package experiments regenerates every experiment of the reproduction
// (see README.md for the experiment index). Each experiment builds a
// metrics.Table; the cmd/experiments binary prints them and the root
// bench harness invokes them under testing.B.
//
// E1 and E2 reproduce the paper's own artifacts (the Figure 1 demo
// scenario and the stated "update time of flow tables" evaluation);
// E3–E9 regenerate the shape results the demo claims through its cited
// algorithms (waypoint enforcement always preserved; relaxed loop
// freedom needs far fewer rounds than strong; violations of the
// one-shot baseline grow with channel asynchrony).
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"tsu/internal/api"
	"tsu/internal/client"
	"tsu/internal/controller"
	"tsu/internal/core"
	"tsu/internal/explore"
	"tsu/internal/metrics"
	"tsu/internal/netem"
	"tsu/internal/openflow"
	"tsu/internal/switchsim"
	"tsu/internal/synth"
	"tsu/internal/topo"
	"tsu/internal/trace"
	"tsu/internal/verify"
)

// FlowIP is the destination identifying the demo flow (host h2).
const FlowIP = "10.0.0.2"

// FlowNWDst is FlowIP as a wire-order integer.
const FlowNWDst uint32 = 0x0a000002

// Bed is a live deployment: controller (OpenFlow listener plus the
// /v1 REST API over loopback TCP), a full fleet of simulated switches,
// and a typed API client. All update traffic runs through Client, the
// same way external operators drive the system.
type Bed struct {
	Ctrl   *controller.Controller
	Fabric *switchsim.Fabric
	Client *client.Client
	rest   *http.Server
	cancel context.CancelFunc
	graph  *topo.Graph
}

// BedConfig parameterizes a live deployment.
type BedConfig struct {
	// Jitter delays each control message per switch (asynchrony).
	Jitter netem.Latency
	// Install delays each FlowMod's effect (rule-install cost).
	Install netem.Latency
	// Seed makes the run reproducible (per-switch sources derive from
	// it).
	Seed int64
}

// NewBed starts a controller and connects one switch per topology node.
func NewBed(g *topo.Graph, cfg BedConfig) (*Bed, error) {
	ctx, cancel := context.WithCancel(context.Background())
	ctrl, err := controller.New(controller.Config{Topology: g})
	if err != nil {
		cancel()
		return nil, err
	}
	addr, err := ctrl.Start(ctx, "127.0.0.1:0")
	if err != nil {
		cancel()
		return nil, err
	}
	fabric := switchsim.NewFabric(g)
	for _, n := range g.Nodes() {
		sw, err := switchsim.NewSwitch(fabric, switchsim.Config{
			Node:           n,
			CtrlLatency:    cfg.Jitter,
			InstallLatency: cfg.Install,
			Source:         netem.NewSource(cfg.Seed*1000003 + int64(n)),
		})
		if err != nil {
			cancel()
			return nil, err
		}
		if err := sw.Connect(ctx, addr); err != nil {
			cancel()
			return nil, err
		}
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	if err := ctrl.WaitForSwitches(waitCtx, g.NumNodes()); err != nil {
		cancel()
		return nil, err
	}
	ln, err := new(net.ListenConfig).Listen(ctx, "tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		return nil, err
	}
	rest := &http.Server{Handler: ctrl.RESTHandler()}
	go rest.Serve(ln) //nolint:errcheck // closed by Bed.Close
	return &Bed{
		Ctrl:   ctrl,
		Fabric: fabric,
		Client: client.New("http://" + ln.Addr().String()),
		rest:   rest,
		cancel: cancel,
		graph:  g,
	}, nil
}

// Close tears the deployment down.
func (b *Bed) Close() {
	b.rest.Close() //nolint:errcheck // shutdown path
	b.cancel()
	for _, n := range b.graph.Nodes() {
		if sw := b.Fabric.Switch(n); sw != nil {
			sw.Stop()
		}
	}
}

// Match returns the demo flow's match.
func Match() openflow.Match { return openflow.ExactNWDst(net.ParseIP(FlowIP)) }

// InstallOldPolicy programs the old path through the REST API
// (delivering to host when the destination switch has one attached).
func (b *Bed) InstallOldPolicy(path topo.Path) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	host := ""
	for _, h := range b.graph.Hosts() {
		if h.Attach == path.Dst() {
			host = h.Name
			break
		}
	}
	return b.Client.InstallPolicy(ctx, api.PolicyRequest{Path: api.FromPath(path), NWDst: FlowIP, Host: host})
}

// RunUpdateAlgorithm submits the update through the API client by
// algorithm name (any registry name or "two-phase", the way an
// external client names it — the server computes the schedule) and
// waits for completion. The returned status carries the
// server-measured per-round and total barrier timings.
func (b *Bed) RunUpdateAlgorithm(in *core.Instance, algorithm string, interval time.Duration) (*api.JobStatus, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	resp, err := b.Client.SubmitBatch(ctx, api.BatchUpdateRequest{
		Updates: []api.FlowUpdate{{
			OldPath:   api.FromPath(in.Old),
			NewPath:   api.FromPath(in.New),
			Waypoint:  uint64(in.Waypoint),
			Algorithm: algorithm,
			NWDst:     FlowIP,
		}},
		Interval: int(interval.Milliseconds()),
	})
	if err != nil {
		return nil, err
	}
	st, err := b.Client.Wait(ctx, resp.Updates[0].ID)
	if err != nil {
		return nil, err
	}
	if st.State != "done" {
		return nil, fmt.Errorf("experiments: job %d failed: %s", st.ID, st.Error)
	}
	return st, nil
}

// fig1Bed builds a bed on the Figure 1 topology with the old policy
// installed.
func fig1Bed(cfg BedConfig) (*Bed, error) {
	bed, err := NewBed(topo.Fig1(), cfg)
	if err != nil {
		return nil, err
	}
	if err := bed.InstallOldPolicy(topo.Fig1OldPath); err != nil {
		bed.Close()
		return nil, err
	}
	return bed, nil
}

// scheduleByName builds a schedule through the core scheduler registry.
func scheduleByName(in *core.Instance, algo string) (*core.Schedule, error) {
	return core.ScheduleByName(in, algo, 0)
}

// E1Fig1 reproduces the paper's demo scenario (Figure 1): the WayUp
// update on the 12-switch topology under an asynchronous control
// channel, with continuous probes, against the one-shot baseline.
// Columns: algorithm, rounds, total update time, probes sent,
// waypoint bypasses, loops, drops.
func E1Fig1(seed int64) (*metrics.Table, error) {
	tbl := metrics.NewTable("algorithm", "rounds", "update_time", "probes", "bypasses", "loops", "drops")
	for _, algo := range []string{core.AlgoWayUp, core.AlgoOneShot} {
		bed, err := fig1Bed(BedConfig{
			Jitter:  netem.Uniform{Min: 0, Max: 3 * time.Millisecond},
			Install: netem.Uniform{Min: 500 * time.Microsecond, Max: 3 * time.Millisecond},
			Seed:    seed,
		})
		if err != nil {
			return nil, err
		}
		in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
		sched, err := scheduleByName(in, algo)
		if err != nil {
			bed.Close()
			return nil, err
		}
		prober := trace.NewProber(bed.Fabric, trace.Config{
			Ingress:  1,
			NWDst:    FlowNWDst,
			Waypoint: topo.Fig1Waypoint,
			Interval: 50 * time.Microsecond,
		})
		stop := prober.Start(context.Background())
		job, err := bed.RunUpdateAlgorithm(in, sched.Algorithm, 0)
		if err != nil {
			stop()
			bed.Close()
			return nil, err
		}
		st := stop()
		tbl.AddRow(algo, sched.NumRounds(), job.TotalDuration(), st.Sent, st.Bypasses, st.Loops, st.Drops)
		bed.Close()
	}
	return tbl, nil
}

// E2UpdateTime reproduces the paper's stated evaluation: "the update
// time of flow tables in OpenFlow switches" — total barrier-confirmed
// update time per algorithm across rule-install latency regimes, on the
// Figure 1 scenario, averaged over reps runs.
func E2UpdateTime(reps int, seed int64) (*metrics.Table, error) {
	if reps <= 0 {
		reps = 3
	}
	regimes := []struct {
		name    string
		install netem.Latency
	}{
		{"fast(0.5ms)", netem.Fixed(500 * time.Microsecond)},
		{"typical(2ms)", netem.Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond}},
		{"pam15-tail", netem.Pareto{Scale: time.Millisecond, Alpha: 1.5, Cap: 8 * time.Millisecond}},
	}
	tbl := metrics.NewTable("install_latency", "algorithm", "rounds", "mean_total", "mean_per_round")
	for _, reg := range regimes {
		for _, algo := range []string{core.AlgoOneShot, core.AlgoPeacock, core.AlgoWayUp, core.AlgoGreedySLF} {
			var total metrics.Histogram
			var perRound metrics.Histogram
			rounds := 0
			for r := 0; r < reps; r++ {
				bed, err := fig1Bed(BedConfig{
					Jitter:  netem.Uniform{Min: 0, Max: time.Millisecond},
					Install: reg.install,
					Seed:    seed + int64(r),
				})
				if err != nil {
					return nil, err
				}
				in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
				sched, err := scheduleByName(in, algo)
				if err != nil {
					bed.Close()
					return nil, err
				}
				rounds = sched.NumRounds()
				job, err := bed.RunUpdateAlgorithm(in, sched.Algorithm, 0)
				if err != nil {
					bed.Close()
					return nil, err
				}
				total.Record(job.TotalDuration())
				for _, rt := range job.Rounds {
					perRound.Record(rt.Duration())
				}
				bed.Close()
			}
			tbl.AddRow(reg.name, algo, rounds, total.Mean(), perRound.Mean())
		}
	}
	return tbl, nil
}

// E3Violations measures how often the one-shot baseline admits a
// reachable transiently insecure state on random waypoint instances —
// versus the scheduled algorithms, which are verified safe on every
// instance. All instances of a size verify as one parallel batch.
// Columns: n, instances, one-shot unsafe fraction, wayup unsafe
// fraction (always 0).
func E3Violations(instances int, seed int64) (*metrics.Table, error) {
	if instances <= 0 {
		instances = 50
	}
	tbl := metrics.NewTable("n", "instances", "oneshot_unsafe", "wayup_unsafe")
	props := core.NoBlackhole | core.WaypointEnforcement
	for _, n := range []int{8, 16, 24, 32} {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		var tasks []verify.Task
		for i := 0; i < instances; i++ {
			ti := topo.RandomTwoPath(rng, n, true)
			in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)
			if in.NumPending() == 0 {
				continue
			}
			for _, algo := range []string{core.AlgoOneShot, core.AlgoWayUp} {
				s, err := scheduleByName(in, algo)
				if err != nil {
					return nil, err
				}
				tasks = append(tasks, verify.Task{Instance: in, Schedule: s, Props: props})
			}
		}
		reports := verify.Batch(tasks, verify.Options{Budget: 1 << 18, Samples: 512, Seed: seed})
		unsafe := map[string]int{} // keyed by the schedule's own algorithm
		for _, r := range reports {
			if !r.OK() {
				unsafe[r.Algorithm]++
			}
		}
		oneshotUnsafe, wayupUnsafe := unsafe[core.AlgoOneShot], unsafe[core.AlgoWayUp]
		tbl.AddRow(n, instances,
			float64(oneshotUnsafe)/float64(instances),
			float64(wayupUnsafe)/float64(instances))
	}
	return tbl, nil
}

// E4Rounds regenerates the PODC'15 shape: rounds needed by relaxed
// loop freedom (Peacock) versus strong loop freedom (greedy) as the
// path length grows, on the adversarial families and random instances.
func E4Rounds(seed int64) (*metrics.Table, error) {
	tbl := metrics.NewTable("family", "n", "peacock_rounds", "greedy_slf_rounds")
	for _, family := range []string{"reversal", "staircase", "nested", "random"} {
		for _, n := range []int{8, 16, 32, 64, 128, 256, 512} {
			var in *core.Instance
			switch family {
			case "reversal":
				ti := topo.Reversal(n)
				in = core.MustInstance(ti.Old, ti.New, 0)
			case "staircase":
				ti := topo.Staircase(n)
				in = core.MustInstance(ti.Old, ti.New, 0)
			case "nested":
				ti := topo.Nested(n)
				in = core.MustInstance(ti.Old, ti.New, 0)
			case "random":
				rng := rand.New(rand.NewSource(seed + int64(n)))
				ti := topo.RandomTwoPath(rng, n, false)
				in = core.MustInstance(ti.Old, ti.New, 0)
			}
			p, err := core.Peacock(in)
			if err != nil {
				return nil, err
			}
			g, err := core.GreedySLF(in)
			if err != nil {
				return nil, err
			}
			tbl.AddRow(family, n, p.NumRounds(), g.NumRounds())
		}
	}
	return tbl, nil
}

// E5Compute measures scheduler computation time per instance size —
// the control-plane cost of transient security.
func E5Compute(seed int64) (*metrics.Table, error) {
	tbl := metrics.NewTable("n", core.AlgoPeacock, "greedy_slf", core.AlgoWayUp)
	for _, n := range []int{8, 32, 128, 512, 2048} {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		ti := topo.RandomTwoPath(rng, n, true)
		in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)
		timeIt := func(f func() error) (time.Duration, error) {
			const iters = 5
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := f(); err != nil {
					return 0, err
				}
			}
			return time.Since(start) / iters, nil
		}
		tp, err := timeIt(func() error { _, err := core.Peacock(in); return err })
		if err != nil {
			return nil, err
		}
		tg, err := timeIt(func() error { _, err := core.GreedySLF(in); return err })
		if err != nil {
			return nil, err
		}
		tw, err := timeIt(func() error { _, err := core.WayUp(in); return err })
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, tp, tg, tw)
	}
	return tbl, nil
}

// E6UpdateTimeVsN measures total live update time as the number of
// switches grows (reversal scenarios over loopback TCP).
func E6UpdateTimeVsN(seed int64) (*metrics.Table, error) {
	tbl := metrics.NewTable("n", "pending", "rounds", "update_time")
	for _, n := range []int{4, 8, 16, 32} {
		ti := topo.Reversal(n)
		bed, err := NewBed(ti.Graph, BedConfig{
			Jitter:  netem.Uniform{Min: 0, Max: time.Millisecond},
			Install: netem.Fixed(time.Millisecond),
			Seed:    seed + int64(n),
		})
		if err != nil {
			return nil, err
		}
		if err := bed.InstallOldPolicy(ti.Old); err != nil {
			bed.Close()
			return nil, err
		}
		in := core.MustInstance(ti.Old, ti.New, 0)
		sched, err := core.Peacock(in)
		if err != nil {
			bed.Close()
			return nil, err
		}
		job, err := bed.RunUpdateAlgorithm(in, sched.Algorithm, 0)
		if err != nil {
			bed.Close()
			return nil, err
		}
		tbl.AddRow(n, in.NumPending(), sched.NumRounds(), job.TotalDuration())
		bed.Close()
	}
	return tbl, nil
}

// E7JitterDose measures the dose-response between control-channel
// jitter and one-shot violations on the Fig.1 scenario (aggregated
// over several seeded runs per jitter level), with WayUp alongside as
// the zero line. The rate column normalizes by probes sent, since
// higher jitter also stretches the vulnerable window.
func E7JitterDose(seed int64) (*metrics.Table, error) {
	const reps = 3
	tbl := metrics.NewTable("jitter_max", "oneshot_violations", "oneshot_probes", "oneshot_rate", "wayup_violations", "wayup_probes")
	for _, jit := range []time.Duration{0, time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond} {
		counts := map[string]trace.Stats{}
		for _, algo := range []string{core.AlgoOneShot, core.AlgoWayUp} {
			var agg trace.Stats
			for rep := 0; rep < reps; rep++ {
				var jitter netem.Latency
				if jit > 0 {
					jitter = netem.Uniform{Min: 0, Max: jit}
				}
				bed, err := fig1Bed(BedConfig{
					Jitter:  jitter,
					Install: netem.Uniform{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond},
					Seed:    seed + int64(jit) + int64(rep)*7919,
				})
				if err != nil {
					return nil, err
				}
				in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
				sched, err := scheduleByName(in, algo)
				if err != nil {
					bed.Close()
					return nil, err
				}
				prober := trace.NewProber(bed.Fabric, trace.Config{
					Ingress: 1, NWDst: FlowNWDst, Waypoint: topo.Fig1Waypoint,
					Interval: 50 * time.Microsecond,
				})
				stop := prober.Start(context.Background())
				if _, err := bed.RunUpdateAlgorithm(in, sched.Algorithm, 0); err != nil {
					stop()
					bed.Close()
					return nil, err
				}
				st := stop()
				agg.Sent += st.Sent
				agg.Delivered += st.Delivered
				agg.Bypasses += st.Bypasses
				agg.Loops += st.Loops
				agg.Drops += st.Drops
				bed.Close()
			}
			counts[algo] = agg
		}
		one := counts[core.AlgoOneShot]
		rate := 0.0
		if one.Sent > 0 {
			rate = float64(one.Violations()) / float64(one.Sent)
		}
		tbl.AddRow(jit,
			one.Violations(), one.Sent, rate,
			counts[core.AlgoWayUp].Violations(), counts[core.AlgoWayUp].Sent)
	}
	return tbl, nil
}

// E9MultiPolicy regenerates the multi-policy extension: joint versus
// sequential round counts and per-switch touches for k concurrent
// policies, on two substrates — random two-path instances over a
// 24-switch set, and valley-free reroutes on a 4-ary fat-tree
// datacenter fabric.
func E9MultiPolicy(seed int64) (*metrics.Table, error) {
	tbl := metrics.NewTable("substrate", "k", "joint_rounds", "sequential_rounds", "flowmods", "max_switch_touches")
	fattree := topo.FatTree(4)
	for _, substrate := range []string{"random24", "fattree4"} {
		for _, k := range []int{1, 2, 4, 8, 16} {
			rng := rand.New(rand.NewSource(seed + int64(k)))
			instances := make([]*core.Instance, 0, k)
			for attempts := 0; len(instances) < k && attempts < 100*k; attempts++ {
				var in *core.Instance
				switch substrate {
				case "random24":
					ti := topo.RandomTwoPath(rng, 24, false)
					in = core.MustInstance(ti.Old, ti.New, 0)
				case "fattree4":
					ti, err := topo.RandomFatTreePolicy(rng, fattree)
					if err != nil {
						return nil, err
					}
					in = core.MustInstance(ti.Old, ti.New, 0)
				}
				if in.NumPending() == 0 {
					continue // degenerate draw: nothing to update
				}
				instances = append(instances, in)
			}
			joint, err := core.NewJointUpdate(instances, core.MustScheduler(core.AlgoPeacock), 0)
			if err != nil {
				return nil, err
			}
			maxTouch := 0
			if summary := joint.TouchSummary(); len(summary) > 0 {
				maxTouch = summary[0].Touches // sorted descending
			}
			tbl.AddRow(substrate, k, joint.NumRounds(), joint.SequentialRounds(), joint.TotalFlowMods(), maxTouch)
		}
	}
	return tbl, nil
}

// E10Result carries the aggregate of one E10 run alongside its table —
// the reproducible event count the benchmark and tests pin.
type E10Result struct {
	Table *metrics.Table
	// Switches is the fat-tree's switch count.
	Switches int
	// Events is the total number of FlowMod delivery events executed
	// across all policies and algorithms — a pure function of the seed.
	Events int
	// Violations counts violating transient states per algorithm.
	Violations map[string]int
}

// E10VirtualFatTree runs datacenter-scale updates entirely in virtual
// time: `policies` random valley-free reroutes on a k-ary fat-tree
// with ≈10k switches (k=90 ⇒ 10125), each replayed on the discrete-
// event clock under PAM'15-shaped control and install latencies, with
// transient security checked after every single delivery event. The
// one-shot baseline racks up violating transient states; peacock stays
// clean — at a scale where the TCP testbed would need hours, in
// seconds of wall-clock time. Columns: algorithm, policies, events,
// violating events, affected policies, mean virtual makespan.
func E10VirtualFatTree(k, policies int, seed int64) (*E10Result, error) {
	if k <= 0 {
		k = 90 // 5k²/4 = 10125 switches
	}
	if policies <= 0 {
		policies = 200
	}
	g := topo.FatTree(k)
	tbl := metrics.NewTable("algorithm", "policies", "events", "violating_events", "affected_policies", "mean_makespan")
	res := &E10Result{Table: tbl, Switches: g.NumNodes(), Violations: make(map[string]int)}

	// Draw the policy set once; both algorithms replay the same
	// instances under the same per-policy latency seeds.
	rng := rand.New(rand.NewSource(seed))
	instances := make([]*core.Instance, 0, policies)
	for len(instances) < policies {
		ti, err := topo.RandomFatTreePolicy(rng, g)
		if err != nil {
			return nil, err
		}
		in := core.MustInstance(ti.Old, ti.New, 0)
		if in.NumPending() == 0 {
			continue
		}
		instances = append(instances, in)
	}
	props := core.NoBlackhole | core.RelaxedLoopFreedom
	for _, algo := range []string{core.AlgoPeacock, core.AlgoOneShot} {
		events, violations, affected := 0, 0, 0
		var makespan metrics.Histogram
		for p, in := range instances {
			sched, err := core.ScheduleByName(in, algo, 0)
			if err != nil {
				return nil, err
			}
			rep, err := explore.Timed(in, sched, explore.TimedOptions{
				Ctrl:    netem.Uniform{Min: 0, Max: 3 * time.Millisecond},
				Install: netem.Pareto{Scale: time.Millisecond, Alpha: 1.5, Cap: 20 * time.Millisecond},
				Barrier: netem.Fixed(500 * time.Microsecond),
				Props:   props,
				Seed:    seed ^ int64(p+1)<<20,
			})
			if err != nil {
				return nil, err
			}
			events += rep.Events
			violations += rep.Violations
			if rep.Violations > 0 {
				affected++
			}
			makespan.Record(rep.Makespan)
		}
		res.Events += events
		res.Violations[algo] = violations
		tbl.AddRow(algo, len(instances), events, violations, affected, makespan.Mean())
	}
	return res, nil
}

// E12SynthGap quantifies every heuristic's optimality gap against the
// counterexample-guided synthesizer (internal/synth) on the paper's
// Figure 1 instance, a random fat-tree(8) reroute, and Comb(12,8).
// Gaps are heuristic − synthesized (positive means the heuristic is
// worse); the source column records whether the CEGIS loop's own plan
// won the portfolio or a heuristic still did.
func E12SynthGap(seed int64) (*metrics.Table, error) {
	ft, err := topo.RandomFatTreePolicy(rand.New(rand.NewSource(seed)), topo.FatTree(8))
	if err != nil {
		return nil, err
	}
	comb := topo.Comb(12, 8)
	cases := []struct {
		name string
		in   *core.Instance
	}{
		{"fig1", core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)},
		{"fattree8", core.MustInstance(ft.Old, ft.New, ft.Waypoint)},
		{"comb12x8", core.MustInstance(comb.Old, comb.New, comb.Waypoint)},
	}
	tbl := metrics.NewTable("instance", "algorithm", "depth", "synth_depth",
		"depth_gap", "edge_gap", "crit_gap", "ctrl_gap", "peer_gap", "synth_source")
	for _, tc := range cases {
		rep, err := synth.Compare(tc.in, synth.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		for _, row := range rep.Rows {
			tbl.AddRow(tc.name, row.Algorithm, row.Heuristic.Depth, row.Synth.Depth,
				row.DepthGap, row.EdgeGap, row.CriticalGap, row.CtrlGap, row.PeerGap, row.SynthSource)
		}
	}
	return tbl, nil
}

// E13Result carries the aggregate of one E13 run alongside its table —
// the reproducible fault/rollback counters the benchmark and tests pin.
type E13Result struct {
	Table *metrics.Table
	// Switches is the fat-tree's switch count.
	Switches int
	// Events counts FlowMod delivery events, forward and rollback,
	// across all fault rates — a pure function of the seed.
	Events int
	// Faults counts injected confirmation losses.
	Faults int
	// Aborts counts updates that aborted mid-plan.
	Aborts int
	// RolledBack counts installs undone by verified rollbacks.
	RolledBack int
	// Violations counts rollback plans the verifier refused. The
	// experiment's invariant is zero: every installed prefix of a
	// peacock plan reverses through forward sub-ideals only.
	Violations int
}

// e13Sample is one update's replay outcome; aggregation over samples
// in instance-index order makes the result worker-count independent.
type e13Sample struct {
	events, faults, rolledBack, stuck, violations int
	aborted                                       bool
	makespan                                      time.Duration
}

// e13Replay executes one reroute on the virtual clock under a seeded
// loss model: per-node control/install/barrier latencies and a
// per-node confirmation-loss draw, all taken in node-index order so
// the replay is a pure function of instSeed. A lost confirmation
// aborts the update RoundTimeout after the node's dispatch; the
// dispatched prefix is then reversed, the reverse plan verified, and
// the rollback replayed on the same clock.
func e13Replay(in *core.Instance, instSeed int64, faultRate float64) (e13Sample, error) {
	const roundTimeout = 100 * time.Millisecond
	var (
		ctrlDist    = netem.Uniform{Min: 0, Max: 3 * time.Millisecond}
		installDist = netem.Pareto{Scale: time.Millisecond, Alpha: 1.5, Cap: 20 * time.Millisecond}
		barrierDist = netem.Fixed(500 * time.Microsecond)
	)
	var s e13Sample
	sched, err := core.Peacock(in)
	if err != nil {
		return s, err
	}
	plan := core.PlanFromSchedule(sched)
	rng := rand.New(rand.NewSource(instSeed))
	n := len(plan.Nodes)
	latency := make([]time.Duration, n)
	lost := make([]bool, n)
	for i := 0; i < n; i++ {
		latency[i] = ctrlDist.Sample(rng) + installDist.Sample(rng) + barrierDist.Sample(rng)
		lost[i] = rng.Float64() < faultRate
	}

	// Ack-driven forward pass: a node dispatches when all its
	// dependencies have confirmed (plan nodes are topologically
	// ordered, so one ascending sweep suffices).
	dispatchT := make([]time.Duration, n)
	confirmT := make([]time.Duration, n)
	reachable := make([]bool, n) // all deps confirm eventually
	abortAt := time.Duration(-1)
	for i := 0; i < n; i++ {
		ready, t := true, time.Duration(0)
		for _, d := range plan.Nodes[i].Deps {
			if !reachable[d] || lost[d] {
				ready = false
				break
			}
			if confirmT[d] > t {
				t = confirmT[d]
			}
		}
		if !ready {
			continue
		}
		reachable[i] = true
		dispatchT[i] = t
		if lost[i] {
			if abortAt < 0 || t+roundTimeout < abortAt {
				abortAt = t + roundTimeout
			}
			continue
		}
		confirmT[i] = t + latency[i]
	}

	if abortAt < 0 { // fault-free run: everything confirms
		s.events = n
		for i := 0; i < n; i++ {
			if confirmT[i] > s.makespan {
				s.makespan = confirmT[i]
			}
		}
		return s, nil
	}

	// The engine stops releasing at the first timeout: the installed
	// prefix is every node dispatched before the abort (down-closed by
	// construction — its deps confirmed even earlier).
	s.aborted = true
	dispatched := make([]bool, n)
	for i := 0; i < n; i++ {
		if reachable[i] && dispatchT[i] <= abortAt {
			dispatched[i] = true
			s.events++
			if lost[i] {
				s.faults++
			}
		}
	}
	rev, _, err := plan.Reverse(dispatched)
	if err != nil {
		return s, fmt.Errorf("reversing dispatched prefix: %w", err)
	}
	if rep := verify.Plan(in, rev, sched.Guarantees, verify.Options{}); !rep.OK() {
		s.violations++
		for i := range dispatched {
			if dispatched[i] {
				s.stuck++
			}
		}
		s.makespan = abortAt
		return s, nil
	}
	// Rollback replay: fresh per-node draws in reverse-plan index
	// order, no losses (the controller keeps barriering undos).
	s.rolledBack = len(rev.Nodes)
	s.events += len(rev.Nodes)
	rbT := make([]time.Duration, len(rev.Nodes))
	var rbEnd time.Duration
	for j := range rev.Nodes {
		t := time.Duration(0)
		for _, d := range rev.Nodes[j].Deps {
			if rbT[d] > t {
				t = rbT[d]
			}
		}
		rbT[j] = t + ctrlDist.Sample(rng) + installDist.Sample(rng) + barrierDist.Sample(rng)
		if rbT[j] > rbEnd {
			rbEnd = rbT[j]
		}
	}
	s.makespan = abortAt + rbEnd
	return s, nil
}

// E13FaultedRollback stress-tests recovery at datacenter scale:
// `policies` random valley-free reroutes on a k-ary fat-tree replayed
// on the virtual clock under seeded confirmation-loss rates. Every
// aborted update reverses its dispatched prefix; the reverse plan must
// verify (peacock rollbacks walk forward sub-ideals only — zero
// violations), and the total event count is a pure function of the
// seed regardless of worker count. Columns: fault rate, updates,
// faulted updates, aborts, delivery events, injected faults, installs
// rolled back, stuck installs, verifier refusals, mean virtual
// makespan.
func E13FaultedRollback(k, policies int, seed int64, workers int) (*E13Result, error) {
	if k <= 0 {
		k = 90 // 5k²/4 = 10125 switches
	}
	if policies <= 0 {
		policies = 200
	}
	if workers <= 0 {
		workers = 1
	}
	g := topo.FatTree(k)
	tbl := metrics.NewTable("fault_rate", "updates", "faulted", "aborts", "events",
		"faults", "rolled_back", "stuck", "violations", "mean_makespan")
	res := &E13Result{Table: tbl, Switches: g.NumNodes()}

	// One policy set, shared across rates: higher rates face the same
	// reroutes, only the fault draws differ.
	rng := rand.New(rand.NewSource(seed))
	instances := make([]*core.Instance, 0, policies)
	for len(instances) < policies {
		ti, err := topo.RandomFatTreePolicy(rng, g)
		if err != nil {
			return nil, err
		}
		in := core.MustInstance(ti.Old, ti.New, 0)
		if in.NumPending() == 0 {
			continue
		}
		instances = append(instances, in)
	}

	for ri, rate := range []float64{0, 0.02, 0.10} {
		samples := make([]e13Sample, len(instances))
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for p := w; p < len(instances); p += workers {
					instSeed := seed ^ int64(p+1)<<20 ^ int64(ri+1)<<40
					s, err := e13Replay(instances[p], instSeed, rate)
					if err != nil {
						errs[w] = fmt.Errorf("policy %d at rate %.2f: %w", p, rate, err)
						return
					}
					samples[p] = s
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		events, faults, aborts, faulted, rolledBack, stuck, violations := 0, 0, 0, 0, 0, 0, 0
		var makespan metrics.Histogram
		for _, s := range samples { // index order: worker-count independent
			events += s.events
			faults += s.faults
			rolledBack += s.rolledBack
			stuck += s.stuck
			violations += s.violations
			if s.aborted {
				aborts++
			}
			if s.faults > 0 {
				faulted++
			}
			makespan.Record(s.makespan)
		}
		res.Events += events
		res.Faults += faults
		res.Aborts += aborts
		res.RolledBack += rolledBack
		res.Violations += violations
		tbl.AddRow(fmt.Sprintf("%.2f", rate), len(instances), faulted, aborts, events,
			faults, rolledBack, stuck, violations, makespan.Mean())
	}
	return res, nil
}

// E14Result carries the aggregate of one E14 run alongside its table —
// the reproducible crash-recovery counters the benchmark and tests pin.
type E14Result struct {
	Table *metrics.Table
	// Switches is the fat-tree's switch count.
	Switches int
	// Boundaries counts crash points replayed (every dispatch boundary
	// of every update, plus the pre-dispatch boundary).
	Boundaries int
	// Requeued counts boundaries recovered by plain re-admission (the
	// journal held no dispatched record).
	Requeued int
	// Adopted counts boundaries where the restarted controller adopted
	// the mid-flight frontier and resumed forward.
	Adopted int
	// RolledBack counts boundaries resolved through a verified reverse
	// plan (the wipe left switch state non-adoptable).
	RolledBack int
	// Events counts FlowMod delivery events: forward, resumed, and undo.
	Events int
	// Violations counts reverse plans the verifier refused. The
	// experiment's invariant is zero: every journaled dispatched set is
	// an order ideal of the peacock plan, and ideals reverse safely.
	Violations int
}

// e14Sample is one update's crash-sweep outcome; aggregation over
// samples in instance-index order keeps the result worker-count
// independent.
type e14Sample struct {
	boundaries, requeued, adopted, rolledBack int
	events, undone, violations, stuck         int
	resumeMakespan                            metrics.Histogram
}

// e14Replay sweeps one reroute's crash boundaries analytically. The
// forward pass replays the peacock plan ack-driven on seeded latencies
// (node-index order, a pure function of instSeed). For every boundary
// k — the engine dying the instant the k-th dispatched record hits the
// journal — the journal is the event-order prefix up to that record,
// and switch state is the journaled dispatched set minus a seeded
// per-node wipe draw (switches that died with the controller and lost
// their rules, the WipeTableOnCrash analog). The restarted controller
// then decides exactly as Engine.Recover does: adopt iff the surviving
// applied set is an order ideal that covers every journaled confirm,
// resuming forward from the frontier; otherwise reverse the journaled
// dispatched set, which must verify.
func e14Replay(in *core.Instance, instSeed int64, wipeRate float64) (e14Sample, error) {
	var (
		ctrlDist    = netem.Uniform{Min: 0, Max: 3 * time.Millisecond}
		installDist = netem.Pareto{Scale: time.Millisecond, Alpha: 1.5, Cap: 20 * time.Millisecond}
		barrierDist = netem.Fixed(500 * time.Microsecond)
	)
	var s e14Sample
	sched, err := core.Peacock(in)
	if err != nil {
		return s, err
	}
	plan := core.PlanFromSchedule(sched)
	rng := rand.New(rand.NewSource(instSeed))
	n := len(plan.Nodes)
	latency := make([]time.Duration, n)
	for i := range latency {
		latency[i] = ctrlDist.Sample(rng) + installDist.Sample(rng) + barrierDist.Sample(rng)
	}

	// Fault-free ack-driven forward pass (plan nodes are topologically
	// ordered): dispatch when the slowest dependency confirms.
	dispatchT := make([]time.Duration, n)
	confirmT := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		t := time.Duration(0)
		for _, d := range plan.Nodes[i].Deps {
			if confirmT[d] > t {
				t = confirmT[d]
			}
		}
		dispatchT[i] = t
		confirmT[i] = t + latency[i]
	}
	// Journal append order: dispatch instants, node index breaking ties.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if dispatchT[order[a]] != dispatchT[order[b]] {
			return dispatchT[order[a]] < dispatchT[order[b]]
		}
		return order[a] < order[b]
	})

	// Boundary 0: the crash lands before any dispatched record. The
	// journal holds only the admit — recovery re-admits and the whole
	// plan re-runs.
	s.boundaries++
	s.requeued++
	s.events += n
	s.resumeMakespan.Record(confirmT[order[n-1]])

	dispatched := make([]bool, n)
	applied := make([]bool, n)
	resumeT := make([]time.Duration, n)
	for k := 1; k <= n; k++ {
		s.boundaries++
		crashAt := dispatchT[order[k-1]]
		// The journaled dispatched set is the append-order prefix; every
		// journaled confirm precedes the crash instant, and confirms
		// always trail their own dispatch, so the confirm set needs no
		// separate bookkeeping beyond confirmT < crashAt.
		for i := range dispatched {
			dispatched[i] = false
		}
		for _, i := range order[:k] {
			dispatched[i] = true
		}
		// In-flight mods had left the wire: every journaled dispatch is
		// applied on its switch unless the wipe draw killed that switch
		// with the controller. Draws go in node-index order per boundary.
		wipeRng := rand.New(rand.NewSource(instSeed ^ int64(k)<<32))
		adoptable := true
		for i := 0; i < n; i++ {
			applied[i] = dispatched[i] && !(wipeRng.Float64() < wipeRate)
			if dispatched[i] && !applied[i] && confirmT[i] < crashAt {
				// A journaled confirm vanished from the data plane.
				adoptable = false
			}
		}
		for i := 0; i < n && adoptable; i++ {
			if !applied[i] {
				continue
			}
			for _, d := range plan.Nodes[i].Deps {
				if !applied[d] { // a hole under the frontier: not an ideal
					adoptable = false
					break
				}
			}
		}
		s.events += k
		if adoptable {
			// Adopt-and-resume: applied nodes are pre-confirmed at the
			// restart instant, everything else re-dispatches ack-driven.
			s.adopted++
			var end time.Duration
			for i := 0; i < n; i++ {
				if applied[i] {
					resumeT[i] = 0
					continue
				}
				t := time.Duration(0)
				for _, d := range plan.Nodes[i].Deps {
					if resumeT[d] > t {
						t = resumeT[d]
					}
				}
				resumeT[i] = t + latency[i]
				s.events++
				if resumeT[i] > end {
					end = resumeT[i]
				}
			}
			s.resumeMakespan.Record(end)
			continue
		}
		// Reconciliation rollback: reverse the journaled dispatched set —
		// an order ideal by construction (a node dispatches only after
		// its dependencies confirmed) — and verify the reverse plan.
		s.rolledBack++
		rev, _, err := plan.Reverse(dispatched)
		if err != nil {
			return s, fmt.Errorf("reversing boundary %d: %w", k, err)
		}
		if rep := verify.Plan(in, rev, sched.Guarantees, verify.Options{}); !rep.OK() {
			s.violations++
			s.stuck += k
			continue
		}
		s.undone += len(rev.Nodes)
		s.events += len(rev.Nodes)
	}
	return s, nil
}

// E14CrashRecovery quantifies crash-restart recovery at fat-tree
// scale: `policies` random valley-free reroutes, each killed at every
// dispatch boundary under seeded switch-wipe rates and recovered by
// the journal-replay decision procedure (adopt the mid-flight frontier
// when the surviving switch state is an order ideal covering all
// journaled confirms, else verified rollback). Invariants: every
// boundary resolves terminal, zero verifier refusals, and all counters
// are a pure function of the seed regardless of worker count. Columns:
// wipe rate, updates, crash boundaries, requeues, adoptions, verified
// rollbacks, installs undone, delivery events, verifier refusals,
// stuck installs, mean resumed makespan.
func E14CrashRecovery(k, policies int, seed int64, workers int) (*E14Result, error) {
	if k <= 0 {
		k = 40 // 5k²/4 = 2000 switches
	}
	if policies <= 0 {
		policies = 100
	}
	if workers <= 0 {
		workers = 1
	}
	g := topo.FatTree(k)
	tbl := metrics.NewTable("wipe_rate", "updates", "boundaries", "requeued", "adopted",
		"rolled_back", "undone", "events", "violations", "stuck", "mean_resume_makespan")
	res := &E14Result{Table: tbl, Switches: g.NumNodes()}

	// One policy set shared across wipe rates: higher rates crash the
	// same reroutes at the same boundaries, only the wipe draws differ.
	rng := rand.New(rand.NewSource(seed))
	instances := make([]*core.Instance, 0, policies)
	for len(instances) < policies {
		ti, err := topo.RandomFatTreePolicy(rng, g)
		if err != nil {
			return nil, err
		}
		in := core.MustInstance(ti.Old, ti.New, 0)
		if in.NumPending() == 0 {
			continue
		}
		instances = append(instances, in)
	}

	for ri, rate := range []float64{0, 0.10, 0.25} {
		samples := make([]e14Sample, len(instances))
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for p := w; p < len(instances); p += workers {
					instSeed := seed ^ int64(p+1)<<20 ^ int64(ri+1)<<40
					s, err := e14Replay(instances[p], instSeed, rate)
					if err != nil {
						errs[w] = fmt.Errorf("policy %d at wipe rate %.2f: %w", p, rate, err)
						return
					}
					samples[p] = s
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		boundaries, requeued, adopted, rolledBack := 0, 0, 0, 0
		events, undone, violations, stuck := 0, 0, 0, 0
		var makespan metrics.Histogram
		for _, s := range samples { // index order: worker-count independent
			boundaries += s.boundaries
			requeued += s.requeued
			adopted += s.adopted
			rolledBack += s.rolledBack
			events += s.events
			undone += s.undone
			violations += s.violations
			stuck += s.stuck
			makespan.Merge(&s.resumeMakespan)
		}
		res.Boundaries += boundaries
		res.Requeued += requeued
		res.Adopted += adopted
		res.RolledBack += rolledBack
		res.Events += events
		res.Violations += violations
		tbl.AddRow(fmt.Sprintf("%.2f", rate), len(instances), boundaries, requeued, adopted,
			rolledBack, undone, events, violations, stuck, makespan.Mean())
	}
	return res, nil
}

// E15Result carries the aggregate of one E15 soak alongside its table —
// the reproducible counters the benchmark and tests pin.
type E15Result struct {
	Table *metrics.Table
	// Switches is the fat-tree's switch count (~100k at the soak tier).
	Switches int
	// Updates is the number of reroutes replayed per rate combination.
	Updates int
	// Events counts FlowMod delivery events across every phase:
	// forward, loss-triggered rollback, crash-resume and crash-undo.
	Events int
	// PeerAcks counts cross-switch releases of decentralized dispatch.
	PeerAcks int
	// Aborts counts updates aborted by a lost confirmation.
	Aborts int
	// LossRolledBack counts installs undone by loss-triggered verified
	// rollbacks; CrashRolledBack counts crash boundaries resolved by a
	// verified reverse plan.
	LossRolledBack  int
	CrashRolledBack int
	// Boundaries counts crash points swept — one per batched journal
	// record (a release wave journals as one grouped dispatched-delta),
	// plus the pre-dispatch boundary.
	Boundaries int
	// Requeued and Adopted split the non-rollback crash recoveries.
	Requeued int
	Adopted  int
	// JournalRecords counts batched dispatched-delta appends the replays
	// modelled; JournalNodes counts the plan nodes those records carried.
	// Their ratio is the write-ahead batching factor — the compaction
	// pressure relief the sharded dispatcher buys (nodes-per-append; the
	// per-append cost itself is BenchmarkJournalCompaction's number).
	JournalRecords int
	JournalNodes   int
	// Violations counts reverse plans the verifier refused. The soak's
	// invariant is zero across both rollback flavors.
	Violations int
}

// e15Sample is one update's soak outcome; aggregation over samples in
// instance-index order keeps the result worker-count independent.
type e15Sample struct {
	events, peerAcks, lossRolledBack          int
	boundaries, requeued, adopted, crashRB    int
	crashEvents, journalRecords, journalNodes int
	violations                                int
	aborted                                   bool
	makespan                                  time.Duration
}

// e15Replay soaks one reroute through the full PR-10 dispatch model on
// virtual time: a decentralized forward pass (peer acks release DAG
// successors switch-to-switch, paying data-plane latency instead of a
// controller round trip) under the E13 confirmation-loss model, then —
// when the forward pass survives — an E14 crash-boundary sweep whose
// boundaries are the *batched* write-ahead records of the sharded
// dispatcher: each release wave journals as one grouped
// dispatched-delta, so the controller can only die between waves, and
// the journaled dispatched set at every boundary is a union of whole
// waves (an order ideal by construction). All randomness is drawn in
// node-index order from instSeed, so the sample is a pure function of
// its seed.
func e15Replay(in *core.Instance, instSeed int64, lossRate, wipeRate float64) (e15Sample, error) {
	const progressTimeout = 100 * time.Millisecond
	var (
		pushDist    = netem.Uniform{Min: 0, Max: 3 * time.Millisecond}
		installDist = netem.Pareto{Scale: time.Millisecond, Alpha: 1.5, Cap: 20 * time.Millisecond}
		peerDist    = netem.Uniform{Min: 100 * time.Microsecond, Max: 500 * time.Microsecond}
	)
	var s e15Sample
	sched, err := core.Peacock(in)
	if err != nil {
		return s, err
	}
	plan := core.PlanFromSchedule(sched)
	rng := rand.New(rand.NewSource(instSeed))
	n := len(plan.Nodes)
	push := make([]time.Duration, n)   // partition-push arrival per node
	inst := make([]time.Duration, n)   // install latency
	ackLat := make([]time.Duration, n) // latency of the acks this node sends
	lost := make([]bool, n)            // confirmation/acks lost (agent stall)
	for i := 0; i < n; i++ {
		push[i] = pushDist.Sample(rng)
		inst[i] = installDist.Sample(rng)
		ackLat[i] = peerDist.Sample(rng)
		lost[i] = rng.Float64() < lossRate
	}

	// Decentralized forward pass (plan nodes are topologically ordered):
	// a node installs when every in-edge ack has arrived; cross-switch
	// acks pay the sender's data-plane hop latency, intra-switch
	// releases are free.
	dispatchT := make([]time.Duration, n)
	confirmT := make([]time.Duration, n)
	reachable := make([]bool, n)
	abortAt := time.Duration(-1)
	for i := 0; i < n; i++ {
		ready, t := true, push[i]
		for _, d := range plan.Nodes[i].Deps {
			if !reachable[d] || lost[d] {
				ready = false
				break
			}
			at := confirmT[d]
			if plan.Nodes[d].Switch != plan.Nodes[i].Switch {
				at += ackLat[d]
			}
			if at > t {
				t = at
			}
		}
		if !ready {
			continue
		}
		reachable[i] = true
		dispatchT[i] = t
		if lost[i] {
			// Installed but never confirmed: the controller's progress
			// timeout fires relative to the node's release.
			if abortAt < 0 || t+progressTimeout < abortAt {
				abortAt = t + progressTimeout
			}
			continue
		}
		confirmT[i] = t + inst[i]
	}

	dispatched := make([]bool, n)
	for i := 0; i < n; i++ {
		dispatched[i] = reachable[i] && (abortAt < 0 || dispatchT[i] <= abortAt)
		if dispatched[i] {
			s.events++
		}
	}
	// Peer acks: one per cross-switch edge whose producer confirmed and
	// whose consumer was released before any abort.
	for i := 0; i < n; i++ {
		if !dispatched[i] {
			continue
		}
		for _, d := range plan.Nodes[i].Deps {
			if !lost[d] && plan.Nodes[d].Switch != plan.Nodes[i].Switch {
				s.peerAcks++
			}
		}
	}
	// Batched write-ahead accounting: every release wave (plan layer)
	// with at least one dispatched node is one grouped journal record.
	layers := plan.NodeLayers()
	waveSize := make([]int, plan.Depth())
	for i := 0; i < n; i++ {
		if dispatched[i] {
			waveSize[layers[i]]++
		}
	}
	for _, w := range waveSize {
		if w > 0 {
			s.journalRecords++
			s.journalNodes += w
		}
	}

	if abortAt >= 0 {
		// Loss-triggered abort: reverse the dispatched prefix (an order
		// ideal — a node releases only after its deps confirm) and verify.
		s.aborted = true
		rev, _, err := plan.Reverse(dispatched)
		if err != nil {
			return s, fmt.Errorf("reversing dispatched prefix: %w", err)
		}
		if rep := verify.Plan(in, rev, sched.Guarantees, verify.Options{}); !rep.OK() {
			s.violations++
			s.makespan = abortAt
			return s, nil
		}
		s.lossRolledBack = len(rev.Nodes)
		s.events += len(rev.Nodes)
		s.makespan = abortAt
		return s, nil
	}
	for i := 0; i < n; i++ {
		if confirmT[i] > s.makespan {
			s.makespan = confirmT[i]
		}
	}

	// Crash-boundary sweep on the clean run. Boundary 0: the crash lands
	// before the first batch record — recovery re-admits, the plan
	// re-runs in full.
	s.boundaries++
	s.requeued++
	s.crashEvents += n
	waves := plan.Depth()
	crashDispatched := make([]bool, n)
	applied := make([]bool, n)
	resumeT := make([]time.Duration, n)
	for b := 1; b <= waves; b++ {
		s.boundaries++
		// The journal holds whole waves 0..b-1 (each one batched append,
		// written ahead of the wire); the crash instant is the moment
		// wave b-1's record landed.
		var crashAt time.Duration
		for i := 0; i < n; i++ {
			crashDispatched[i] = layers[i] < b
			if crashDispatched[i] && dispatchT[i] > crashAt {
				crashAt = dispatchT[i]
			}
		}
		// Wipe draws per boundary in node-index order: switches that died
		// with the controller lost their rules.
		wipeRng := rand.New(rand.NewSource(instSeed ^ int64(b)<<32))
		adoptable := true
		for i := 0; i < n; i++ {
			applied[i] = crashDispatched[i] && !(wipeRng.Float64() < wipeRate)
			if crashDispatched[i] && !applied[i] && confirmT[i] < crashAt {
				adoptable = false // a journaled confirm vanished
			}
		}
		for i := 0; i < n && adoptable; i++ {
			if !applied[i] {
				continue
			}
			for _, d := range plan.Nodes[i].Deps {
				if !applied[d] { // a hole under the frontier: not an ideal
					adoptable = false
					break
				}
			}
		}
		s.crashEvents += countTrue(crashDispatched)
		if adoptable {
			s.adopted++
			for i := 0; i < n; i++ {
				if applied[i] {
					resumeT[i] = 0
					continue
				}
				t := time.Duration(0)
				for _, d := range plan.Nodes[i].Deps {
					if resumeT[d] > t {
						t = resumeT[d]
					}
				}
				resumeT[i] = t + inst[i]
				s.crashEvents++
			}
			continue
		}
		s.crashRB++
		rev, _, err := plan.Reverse(crashDispatched)
		if err != nil {
			return s, fmt.Errorf("reversing boundary %d: %w", b, err)
		}
		if rep := verify.Plan(in, rev, sched.Guarantees, verify.Options{}); !rep.OK() {
			s.violations++
			continue
		}
		s.crashEvents += len(rev.Nodes)
	}
	return s, nil
}

func countTrue(bs []bool) int {
	c := 0
	for _, b := range bs {
		if b {
			c++
		}
	}
	return c
}

// E15Soak is the 100k-switch soak tier: `policies` random valley-free
// reroutes on a k-ary fat-tree, each replayed through the decentralized
// sharded-dispatch model on virtual time under combined stress — the
// E13 confirmation-loss model on the forward pass and the E14
// crash-boundary sweep on surviving runs, with crash points at the
// *batched* write-ahead records the PR-10 dispatcher appends (one per
// release wave). Invariants: zero verifier refusals across both
// rollback flavors, and every counter a pure function of the seed
// regardless of worker count. Columns: loss rate, wipe rate, updates,
// aborts, peer acks, journaled batches, journaled nodes, crash
// boundaries, requeues, adoptions, crash rollbacks, delivery events,
// verifier refusals, mean virtual makespan.
func E15Soak(k, policies int, seed int64, workers int) (*E15Result, error) {
	if k <= 0 {
		k = 284 // 5k²/4 = 100,820 switches: the 100k soak tier
	}
	if policies <= 0 {
		policies = 100
	}
	if workers <= 0 {
		workers = 1
	}
	g := topo.FatTree(k)
	tbl := metrics.NewTable("loss_rate", "wipe_rate", "updates", "aborts", "peer_acks",
		"journal_batches", "journal_nodes", "boundaries", "requeued", "adopted",
		"crash_rolled_back", "events", "violations", "mean_makespan")
	res := &E15Result{Table: tbl, Switches: g.NumNodes(), Updates: policies}

	// One policy set shared across rate combinations: every tier soaks
	// the same reroutes, only the fault draws differ.
	rng := rand.New(rand.NewSource(seed))
	instances := make([]*core.Instance, 0, policies)
	for len(instances) < policies {
		ti, err := topo.RandomFatTreePolicy(rng, g)
		if err != nil {
			return nil, err
		}
		in := core.MustInstance(ti.Old, ti.New, 0)
		if in.NumPending() == 0 {
			continue
		}
		instances = append(instances, in)
	}

	combos := []struct{ loss, wipe float64 }{{0, 0}, {0.02, 0.10}, {0.05, 0.25}}
	for ri, cb := range combos {
		samples := make([]e15Sample, len(instances))
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for p := w; p < len(instances); p += workers {
					instSeed := seed ^ int64(p+1)<<20 ^ int64(ri+1)<<40
					s, err := e15Replay(instances[p], instSeed, cb.loss, cb.wipe)
					if err != nil {
						errs[w] = fmt.Errorf("policy %d at combo %d: %w", p, ri, err)
						return
					}
					samples[p] = s
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		events, peerAcks, aborts, lossRB := 0, 0, 0, 0
		boundaries, requeued, adopted, crashRB := 0, 0, 0, 0
		jRecords, jNodes, violations := 0, 0, 0
		var makespan metrics.Histogram
		for _, s := range samples { // index order: worker-count independent
			events += s.events + s.crashEvents
			peerAcks += s.peerAcks
			lossRB += s.lossRolledBack
			boundaries += s.boundaries
			requeued += s.requeued
			adopted += s.adopted
			crashRB += s.crashRB
			jRecords += s.journalRecords
			jNodes += s.journalNodes
			violations += s.violations
			if s.aborted {
				aborts++
			}
			makespan.Record(s.makespan)
		}
		res.Events += events
		res.PeerAcks += peerAcks
		res.Aborts += aborts
		res.LossRolledBack += lossRB
		res.Boundaries += boundaries
		res.Requeued += requeued
		res.Adopted += adopted
		res.CrashRolledBack += crashRB
		res.JournalRecords += jRecords
		res.JournalNodes += jNodes
		res.Violations += violations
		tbl.AddRow(fmt.Sprintf("%.2f", cb.loss), fmt.Sprintf("%.2f", cb.wipe),
			len(instances), aborts, peerAcks, jRecords, jNodes, boundaries, requeued,
			adopted, crashRB, events, violations, makespan.Mean())
	}
	return res, nil
}

// All runs every experiment (E8, the codec microbenchmark, lives in
// the bench harness only) and returns the tables keyed by id.
func All(seed int64) (map[string]*metrics.Table, error) {
	out := make(map[string]*metrics.Table)
	type exp struct {
		id  string
		run func() (*metrics.Table, error)
	}
	for _, e := range []exp{
		{"E1", func() (*metrics.Table, error) { return E1Fig1(seed) }},
		{"E2", func() (*metrics.Table, error) { return E2UpdateTime(3, seed) }},
		{"E3", func() (*metrics.Table, error) { return E3Violations(50, seed) }},
		{"E4", func() (*metrics.Table, error) { return E4Rounds(seed) }},
		{"E5", func() (*metrics.Table, error) { return E5Compute(seed) }},
		{"E6", func() (*metrics.Table, error) { return E6UpdateTimeVsN(seed) }},
		{"E7", func() (*metrics.Table, error) { return E7JitterDose(seed) }},
		{"E9", func() (*metrics.Table, error) { return E9MultiPolicy(seed) }},
		{"E10", func() (*metrics.Table, error) {
			res, err := E10VirtualFatTree(0, 0, seed)
			if err != nil {
				return nil, err
			}
			return res.Table, nil
		}},
		{"E12", func() (*metrics.Table, error) { return E12SynthGap(seed) }},
		{"E13", func() (*metrics.Table, error) {
			res, err := E13FaultedRollback(0, 0, seed, 4)
			if err != nil {
				return nil, err
			}
			return res.Table, nil
		}},
		{"E14", func() (*metrics.Table, error) {
			res, err := E14CrashRecovery(0, 0, seed, 4)
			if err != nil {
				return nil, err
			}
			return res.Table, nil
		}},
		{"E15", func() (*metrics.Table, error) {
			// The quick table runs the 2000-switch tier; the full
			// 100,820-switch soak is BenchmarkE15Soak's job.
			res, err := E15Soak(40, 50, seed, 4)
			if err != nil {
				return nil, err
			}
			return res.Table, nil
		}},
	} {
		tbl, err := e.run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.id, err)
		}
		out[e.id] = tbl
	}
	return out, nil
}
