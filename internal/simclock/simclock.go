// Package simclock provides the virtual time base of the repository: a
// Clock interface over Now/Sleep/After with two implementations — the
// real wall clock, and Sim, a discrete-event scheduler whose time
// advances only when events fire.
//
// The paper's entire problem is that FlowMods "take effect out of
// order" across asynchronous switches; modelling that asynchrony with
// real time.Sleep makes large scenarios run in wall-clock time and
// leaves the interleaving to the Go scheduler. Under Sim, every delay
// is an event on a queue ordered deterministically by (time, seq): a
// 10k-switch scenario runs as fast as the events can be processed, and
// the same seed pins the same event order, run after run.
//
// Two usage styles, with different determinism guarantees:
//
//   - Event callbacks (Schedule + Advance/Run): everything happens in
//     the driving goroutine, in exact (time, seq) order. This is fully
//     deterministic and is what internal/explore and the virtual
//     experiment harness use. Callbacks must not block on the clock
//     (no Sleep/After inside a callback — the driver would deadlock).
//
//   - Blocking waiters (Sleep/After from other goroutines): the waiter
//     parks until some other goroutine advances the clock past its
//     deadline. Wake-up *times* are deterministic, but the woken
//     goroutine races the driver like any other goroutine — use this
//     to put live TCP deployments (switch control loops, the engine's
//     inter-round pauses) on virtual time, not to pin interleavings.
//     AutoAdvance drives such a deployment: whenever no event has
//     fired for an idle window of real time, the next pending event is
//     released, so virtual delays cost (almost) no wall-clock time.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts the time base. Real time satisfies it via the Real
// singleton; Sim satisfies it with virtual time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock (returns
	// immediately for d <= 0).
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// realClock forwards to package time.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }
func (realClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Real is the wall clock. It is the default everywhere a nil Clock is
// accepted.
var Real Clock = realClock{}

// Or returns c, defaulting to Real when c is nil — the idiom for
// optional Clock config fields.
func Or(c Clock) Clock {
	if c == nil {
		return Real
	}
	return c
}

// Epoch is the default start time of a Sim clock: a fixed instant, so
// virtual timestamps are reproducible run-to-run.
var Epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// event is one queue entry. Ties on `at` break by `seq`, the order the
// events were scheduled in — fully deterministic for single-threaded
// (callback-style) drivers.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Sim is a virtual clock with a discrete-event scheduler. Time never
// advances on its own: Advance/AdvanceTo/Run/Step pop due events in
// (time, seq) order, move the clock to each event's timestamp, and run
// its callback. The zero value is not usable; construct with NewSim.
//
// All methods are safe for concurrent use; callbacks run outside the
// internal lock (they may schedule further events).
type Sim struct {
	mu    sync.Mutex
	now   time.Time
	seq   uint64
	fired uint64
	queue eventQueue
	free  []*event // fired events recycled into Schedule/ScheduleAt
}

// maxFreeEvents caps the recycled-event list; beyond it fired events
// are left to the garbage collector.
const maxFreeEvents = 4096

// newEventLocked returns a recycled (or fresh) event initialized with
// the next sequence number. Callers hold s.mu.
func (s *Sim) newEventLocked(at time.Time, fn func()) *event {
	s.seq++
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*ev = event{at: at, seq: s.seq, fn: fn}
		return ev
	}
	return &event{at: at, seq: s.seq, fn: fn}
}

// recycle returns a fired event to the free list, dropping its
// callback reference.
func (s *Sim) recycle(ev *event) {
	s.mu.Lock()
	if len(s.free) < maxFreeEvents {
		ev.fn = nil
		s.free = append(s.free, ev)
	}
	s.mu.Unlock()
}

// NewSim returns a Sim starting at `start` (the zero time selects
// Epoch).
func NewSim(start time.Time) *Sim {
	if start.IsZero() {
		start = Epoch
	}
	return &Sim{now: start}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// ScheduleAt enqueues fn to run when virtual time reaches t. Times in
// the past clamp to now (virtual time is monotonic). Events scheduled
// for the same instant fire in scheduling order.
func (s *Sim) ScheduleAt(t time.Time, fn func()) {
	s.mu.Lock()
	if t.Before(s.now) {
		t = s.now
	}
	heap.Push(&s.queue, s.newEventLocked(t, fn))
	s.mu.Unlock()
}

// Schedule enqueues fn to run d from now (d <= 0 means at the current
// instant, on the next Advance/Run/Step). Fired events are recycled
// into subsequent Schedule calls, so a schedule/fire cycle does not
// allocate in steady state.
func (s *Sim) Schedule(d time.Duration, fn func()) {
	s.mu.Lock()
	t := s.now
	if d > 0 {
		t = t.Add(d)
	}
	heap.Push(&s.queue, s.newEventLocked(t, fn))
	s.mu.Unlock()
}

// Sleep blocks the calling goroutine until virtual time has advanced
// by d (some other goroutine must drive the clock). d <= 0 returns
// immediately.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	s.Schedule(d, func() { close(ch) })
	<-ch
}

// After returns a channel delivering the virtual time once d has
// elapsed on the clock. The channel is buffered: the driver never
// blocks on a slow receiver.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.Schedule(d, func() { ch <- s.Now() })
	return ch
}

// pop removes and returns the earliest event if its time is <= limit,
// advancing now to the event's time.
func (s *Sim) pop(limit time.Time) *event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 || s.queue[0].at.After(limit) {
		return nil
	}
	ev := heap.Pop(&s.queue).(*event)
	if ev.at.After(s.now) {
		s.now = ev.at
	}
	s.fired++
	return ev
}

// AdvanceTo fires every event with timestamp <= t in (time, seq)
// order (including events those events schedule within the window),
// then sets the clock to t. It returns the number of events fired.
// Virtual time never moves backward: t before now is a no-op.
func (s *Sim) AdvanceTo(t time.Time) int {
	n := 0
	for {
		ev := s.pop(t)
		if ev == nil {
			break
		}
		ev.fn()
		s.recycle(ev)
		n++
	}
	s.mu.Lock()
	if t.After(s.now) {
		s.now = t
	}
	s.mu.Unlock()
	return n
}

// Advance moves the clock forward by d, firing due events (see
// AdvanceTo).
func (s *Sim) Advance(d time.Duration) int {
	return s.AdvanceTo(s.Now().Add(d))
}

// Run fires events until the queue is empty, advancing time to each.
// It returns the number of events fired. Recurring events (callbacks
// that reschedule themselves unconditionally) make Run diverge — bound
// them, or use AdvanceTo.
func (s *Sim) Run() int {
	n := 0
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return n
		}
		limit := s.queue[0].at
		s.mu.Unlock()
		n += s.AdvanceTo(limit)
	}
}

// Step fires the earliest pending timestamp — all events scheduled for
// that exact instant — and returns how many fired (0 when idle).
func (s *Sim) Step() int {
	s.mu.Lock()
	if len(s.queue) == 0 {
		s.mu.Unlock()
		return 0
	}
	limit := s.queue[0].at
	s.mu.Unlock()
	n := 0
	for {
		ev := s.pop(limit)
		if ev == nil {
			return n
		}
		ev.fn()
		s.recycle(ev)
		n++
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// NextAt returns the earliest pending event's timestamp.
func (s *Sim) NextAt() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return time.Time{}, false
	}
	return s.queue[0].at, true
}

// Fired returns the total number of events executed so far — the
// reproducible "event count" of a simulation run.
func (s *Sim) Fired() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// AutoAdvance starts a background driver for live deployments on
// virtual time: whenever no event has fired for an idle window of real
// time and events are pending, it releases the next pending timestamp
// (Step). Goroutines blocked in Sleep/After thus wake as soon as the
// system is otherwise quiescent, so virtual delays cost roughly one
// idle window of wall-clock time each instead of their face value.
// idle <= 0 selects 500µs. The returned stop function halts the driver
// (idempotent).
func (s *Sim) AutoAdvance(idle time.Duration) (stop func()) {
	if idle <= 0 {
		idle = 500 * time.Microsecond
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		last := s.Fired()
		for {
			select {
			case <-done:
				return
			case <-time.After(idle):
			}
			if cur := s.Fired(); cur != last {
				last = cur // progress without us; give it another window
				continue
			}
			s.Step()
			last = s.Fired()
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
