package simclock

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSimOrderingByTimeThenSeq(t *testing.T) {
	s := NewSim(time.Time{})
	var log []string
	s.Schedule(3*time.Millisecond, func() { log = append(log, "c@3") })
	s.Schedule(time.Millisecond, func() { log = append(log, "a@1") })
	s.Schedule(time.Millisecond, func() { log = append(log, "b@1") }) // same instant: scheduling order
	s.Schedule(2*time.Millisecond, func() { log = append(log, "d@2") })
	if n := s.Run(); n != 4 {
		t.Fatalf("fired %d events, want 4", n)
	}
	want := "[a@1 b@1 d@2 c@3]"
	if got := fmt.Sprint(log); got != want {
		t.Fatalf("event order %s, want %s", got, want)
	}
	if got := s.Now().Sub(Epoch); got != 3*time.Millisecond {
		t.Fatalf("clock at +%v, want +3ms", got)
	}
}

func TestSimAdvanceToBoundary(t *testing.T) {
	s := NewSim(time.Time{})
	fired := 0
	s.Schedule(time.Millisecond, func() { fired++ })
	s.Schedule(5*time.Millisecond, func() { fired++ })
	if n := s.Advance(2 * time.Millisecond); n != 1 || fired != 1 {
		t.Fatalf("advance(2ms) fired %d (%d), want 1", n, fired)
	}
	if got := s.Now().Sub(Epoch); got != 2*time.Millisecond {
		t.Fatalf("clock at +%v after Advance(2ms)", got)
	}
	// Time is monotonic: advancing into the past is a no-op.
	if n := s.AdvanceTo(Epoch); n != 0 {
		t.Fatalf("AdvanceTo(past) fired %d events", n)
	}
	if got := s.Now().Sub(Epoch); got != 2*time.Millisecond {
		t.Fatalf("clock moved backward to +%v", got)
	}
	if n := s.Run(); n != 1 || fired != 2 {
		t.Fatalf("Run fired %d (%d), want 1", n, fired)
	}
}

func TestSimCallbacksCanReschedule(t *testing.T) {
	s := NewSim(time.Time{})
	var ticks []time.Duration
	var tick func()
	tick = func() {
		ticks = append(ticks, s.Now().Sub(Epoch))
		if len(ticks) < 5 {
			s.Schedule(time.Millisecond, tick)
		}
	}
	s.Schedule(time.Millisecond, tick)
	s.Run()
	if len(ticks) != 5 || ticks[4] != 5*time.Millisecond {
		t.Fatalf("ticks = %v", ticks)
	}
}

func TestSimSleepWakesOnAdvance(t *testing.T) {
	s := NewSim(time.Time{})
	var wg sync.WaitGroup
	var woke time.Time
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Sleep(10 * time.Millisecond)
		woke = s.Now()
	}()
	// Wait until the sleeper has registered its event.
	for s.Pending() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	s.Advance(10 * time.Millisecond)
	wg.Wait()
	if got := woke.Sub(Epoch); got != 10*time.Millisecond {
		t.Fatalf("sleeper woke at +%v, want +10ms", got)
	}
}

func TestSimAfterDeliversVirtualTime(t *testing.T) {
	s := NewSim(time.Time{})
	ch := s.After(7 * time.Millisecond)
	s.Advance(7 * time.Millisecond)
	select {
	case at := <-ch:
		if got := at.Sub(Epoch); got != 7*time.Millisecond {
			t.Fatalf("After delivered +%v, want +7ms", got)
		}
	default:
		t.Fatal("After channel empty after Advance past deadline")
	}
}

func TestSimAutoAdvanceDrivesSleepers(t *testing.T) {
	s := NewSim(time.Time{})
	stop := s.AutoAdvance(100 * time.Microsecond)
	defer stop()
	start := time.Now()
	s.Sleep(30 * time.Second) // virtual; must not take 30s of wall time
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("virtual 30s sleep took %v wall-clock", elapsed)
	}
	if got := s.Now().Sub(Epoch); got != 30*time.Second {
		t.Fatalf("clock at +%v, want +30s", got)
	}
}

func TestSimFiredCountsEvents(t *testing.T) {
	s := NewSim(time.Time{})
	for i := 0; i < 17; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Fired() != 17 {
		t.Fatalf("Fired() = %d, want 17", s.Fired())
	}
}

func TestOrDefaultsToReal(t *testing.T) {
	if Or(nil) != Real {
		t.Fatal("Or(nil) != Real")
	}
	s := NewSim(time.Time{})
	if Or(s) != Clock(s) {
		t.Fatal("Or(s) != s")
	}
}
