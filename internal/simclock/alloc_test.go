//go:build !race

package simclock

import (
	"testing"
	"time"
)

// TestScheduleAllocs pins Sim.Schedule at zero allocations in steady
// state: fired events are recycled through the Sim's free list, so a
// schedule/fire cycle — the shape of every delivery event in the
// discrete-event experiments — reuses its event record.
func TestScheduleAllocs(t *testing.T) {
	sim := NewSim(time.Time{})
	fn := func() {}
	sim.Schedule(time.Microsecond, fn) // warm: first event allocates
	sim.Run()
	if got := testing.AllocsPerRun(200, func() {
		sim.Schedule(time.Microsecond, fn)
		sim.Run()
	}); got != 0 {
		t.Fatalf("Sim.Schedule+Run cycle = %.1f allocs/op, want 0 in steady state", got)
	}
}
