// Package planwire defines the control-channel payloads of
// decentralized plan execution, carried inside OpenFlow VENDOR
// messages (the 1.0 experimenter escape hatch) over the existing
// controller↔switch connection:
//
//   - Push (controller → switch): the switch's plan partition — its
//     own installs, the in-edge acks to wait for, the out-edges to
//     notify — plus the FlowMods to apply, one broadcast per switch.
//   - Report (switch → controller): the terminal completion report —
//     per-node install timings as offsets from partition receipt, the
//     releasing predecessor of each install, and the switch's peer
//     message counters.
//
// Everything in between — the per-edge acks — travels switch-to-switch
// on the data-plane fabric and never touches the controller; see
// switchsim's plan agent. Both payloads reuse the strict canonical
// decoding style of core's plan codec: a malformed payload yields an
// error, never a panic or a partial struct.
package planwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"tsu/internal/core"
	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// VendorID identifies this repository's vendor messages ("\0TSU").
const VendorID uint32 = 0x00545355

// Payload kind discriminators (first payload byte).
const (
	kindPush        = 1
	kindReport      = 2
	kindStateQuery  = 3
	kindStateReport = 4
)

// ErrWire marks malformed planwire payloads; match with errors.Is.
var ErrWire = errors.New("malformed planwire payload")

// maxNodeMods bounds the FlowMods attached to one plan node.
const maxNodeMods = 1 << 10

// Push is the controller's one-shot broadcast to a switch: the plan
// partition it executes and the FlowMods of each owned node.
type Push struct {
	// Job is the controller-side job id, echoed in acks and the report.
	Job int

	// Interval pauses a dependent install after its release (the REST
	// message's "interval", applied switch-locally).
	Interval time.Duration

	// Part is the switch's plan partition.
	Part *core.SwitchPartition

	// Mods holds each owned node's FlowMods, aligned with Part.Nodes.
	Mods [][]*openflow.FlowMod
}

// NodeReport is one install's outcome inside a Report. Timings are
// offsets from the moment the partition arrived at the switch — the
// agent has no global clock; the controller anchors them at its
// broadcast time.
type NodeReport struct {
	// Index is the node's global plan index.
	Index int

	// ReleasedBy names the predecessor switch whose ack arrived last
	// (zero for installs with no in-edges).
	ReleasedBy topo.NodeID

	// FlowMods counts the rules applied for this node.
	FlowMods int

	// Started and Finished bound the install (first FlowMod applied to
	// last confirmed), as offsets from partition receipt.
	Started, Finished time.Duration
}

// Report is a switch's terminal completion report: every owned node
// installed, plus the peer-messaging counters for the job.
type Report struct {
	Job    int
	Switch topo.NodeID

	// AcksSent counts peer acks this switch sent (including duplicates
	// injected by fault testing); AcksRecv counts distinct acks
	// received; DupAcks counts redundant deliveries that idempotence
	// absorbed.
	AcksSent, AcksRecv, DupAcks int

	// Nodes reports each owned node, ascending by completion time.
	Nodes []NodeReport
}

// EncodePush serialises a Push payload (excluding the vendor id, which
// the OpenFlow Vendor envelope carries).
func EncodePush(p *Push) ([]byte, error) {
	if len(p.Mods) != len(p.Part.Nodes) {
		return nil, fmt.Errorf("planwire: %d mod lists for %d nodes", len(p.Mods), len(p.Part.Nodes))
	}
	buf := []byte{kindPush}
	buf = binary.AppendUvarint(buf, uint64(p.Job))
	buf = binary.AppendUvarint(buf, uint64(p.Interval))
	part := core.EncodePartition(p.Part)
	buf = binary.AppendUvarint(buf, uint64(len(part)))
	buf = append(buf, part...)
	for _, mods := range p.Mods {
		if len(mods) > maxNodeMods {
			return nil, fmt.Errorf("planwire: %d mods on one node", len(mods))
		}
		buf = binary.AppendUvarint(buf, uint64(len(mods)))
		for _, fm := range mods {
			blob, err := openflow.Encode(fm)
			if err != nil {
				return nil, fmt.Errorf("planwire: encoding flowmod: %w", err)
			}
			buf = binary.AppendUvarint(buf, uint64(len(blob)))
			buf = append(buf, blob...)
		}
	}
	return buf, nil
}

// DecodePush parses a Push payload.
func DecodePush(data []byte) (*Push, error) {
	d := decoder{buf: data}
	if k := d.byte(); k != kindPush {
		return nil, fmt.Errorf("planwire: payload kind %d, want push: %w", k, ErrWire)
	}
	p := &Push{
		Job:      int(d.uvarint()),
		Interval: time.Duration(d.uvarint()),
	}
	partLen := d.uvarint()
	if partLen > 1<<26 {
		return nil, fmt.Errorf("planwire: partition of %d bytes: %w", partLen, ErrWire)
	}
	partBytes := d.take(int(partLen))
	if d.err != nil {
		return nil, d.err
	}
	part, err := core.DecodePartition(partBytes)
	if err != nil {
		return nil, fmt.Errorf("planwire: partition: %w", err)
	}
	p.Part = part
	p.Mods = make([][]*openflow.FlowMod, len(part.Nodes))
	for i := range part.Nodes {
		n := d.uvarint()
		if n > maxNodeMods {
			return nil, fmt.Errorf("planwire: %d mods on one node: %w", n, ErrWire)
		}
		for k := 0; k < int(n) && d.err == nil; k++ {
			blobLen := d.uvarint()
			if blobLen > openflow.MaxMessageLen {
				return nil, fmt.Errorf("planwire: flowmod of %d bytes: %w", blobLen, ErrWire)
			}
			blob := d.take(int(blobLen))
			if d.err != nil {
				break
			}
			m, err := openflow.Decode(blob)
			if err != nil {
				return nil, fmt.Errorf("planwire: flowmod: %w", err)
			}
			fm, ok := m.(*openflow.FlowMod)
			if !ok {
				return nil, fmt.Errorf("planwire: node %d carries a %s, want FLOW_MOD: %w", i, m.MsgType(), ErrWire)
			}
			p.Mods[i] = append(p.Mods[i], fm)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("planwire: %d trailing bytes: %w", len(d.buf)-d.off, ErrWire)
	}
	return p, nil
}

// Encode serialises a Report payload.
func (r *Report) Encode() []byte {
	buf := []byte{kindReport}
	buf = binary.AppendUvarint(buf, uint64(r.Job))
	buf = binary.AppendUvarint(buf, uint64(r.Switch))
	buf = binary.AppendUvarint(buf, uint64(r.AcksSent))
	buf = binary.AppendUvarint(buf, uint64(r.AcksRecv))
	buf = binary.AppendUvarint(buf, uint64(r.DupAcks))
	buf = binary.AppendUvarint(buf, uint64(len(r.Nodes)))
	for _, nr := range r.Nodes {
		buf = binary.AppendUvarint(buf, uint64(nr.Index))
		buf = binary.AppendUvarint(buf, uint64(nr.ReleasedBy))
		buf = binary.AppendUvarint(buf, uint64(nr.FlowMods))
		buf = binary.AppendUvarint(buf, uint64(nr.Started))
		buf = binary.AppendUvarint(buf, uint64(nr.Finished))
	}
	return buf
}

// DecodeReport parses a Report payload.
func DecodeReport(data []byte) (*Report, error) {
	d := decoder{buf: data}
	if k := d.byte(); k != kindReport {
		return nil, fmt.Errorf("planwire: payload kind %d, want report: %w", k, ErrWire)
	}
	r := &Report{
		Job:      int(d.uvarint()),
		Switch:   topo.NodeID(d.uvarint()),
		AcksSent: int(d.uvarint()),
		AcksRecv: int(d.uvarint()),
		DupAcks:  int(d.uvarint()),
	}
	n := d.uvarint()
	if n > 1<<20 {
		return nil, fmt.Errorf("planwire: report covers %d nodes: %w", n, ErrWire)
	}
	for i := 0; i < int(n) && d.err == nil; i++ {
		r.Nodes = append(r.Nodes, NodeReport{
			Index:      int(d.uvarint()),
			ReleasedBy: topo.NodeID(d.uvarint()),
			FlowMods:   int(d.uvarint()),
			Started:    time.Duration(d.uvarint()),
			Finished:   time.Duration(d.uvarint()),
		})
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("planwire: %d trailing bytes: %w", len(d.buf)-d.off, ErrWire)
	}
	return r, nil
}

// Kind peeks a payload's discriminator without decoding it.
func Kind(data []byte) (push, report bool) {
	if len(data) == 0 {
		return false, false
	}
	return data[0] == kindPush, data[0] == kindReport
}

// IsStateQuery peeks whether a payload is a StateQuery.
func IsStateQuery(data []byte) bool {
	return len(data) > 0 && data[0] == kindStateQuery
}

// IsStateReport peeks whether a payload is a StateReport.
func IsStateReport(data []byte) bool {
	return len(data) > 0 && data[0] == kindStateReport
}

// StateQuery (controller → switch) asks a switch what it knows about a
// flow after a controller restart: whether a rule for the flow is
// installed (and where it forwards), and — in decentralized mode —
// which plan nodes the switch's plan agent has completed. The answer
// lets the recovered engine reconstruct the global order ideal from
// purely local switch state.
type StateQuery struct {
	// Job is the recovering job's id, echoed in the StateReport.
	Job int

	// NWDst identifies the flow (exact-match IPv4 destination).
	NWDst uint32
}

// Encode serialises a StateQuery payload.
func (q *StateQuery) Encode() []byte {
	buf := []byte{kindStateQuery}
	buf = binary.AppendUvarint(buf, uint64(q.Job))
	buf = binary.BigEndian.AppendUint32(buf, q.NWDst)
	return buf
}

// DecodeStateQuery parses a StateQuery payload.
func DecodeStateQuery(data []byte) (*StateQuery, error) {
	d := decoder{buf: data}
	if k := d.byte(); k != kindStateQuery {
		return nil, fmt.Errorf("planwire: payload kind %d, want state query: %w", k, ErrWire)
	}
	q := &StateQuery{Job: int(d.uvarint())}
	if b := d.take(4); b != nil {
		q.NWDst = binary.BigEndian.Uint32(b)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("planwire: %d trailing bytes: %w", len(d.buf)-d.off, ErrWire)
	}
	return q, nil
}

// StateReport (switch → controller) answers a StateQuery with the
// switch's local view of the flow.
type StateReport struct {
	Job    int
	Switch topo.NodeID

	// RulePresent reports whether an exact-match rule for the queried
	// flow exists in the flow table; OutPort is its output port when
	// present.
	RulePresent bool
	OutPort     uint16

	// AgentDone lists the global plan-node indices the switch's plan
	// agent completed for this job (decentralized mode; empty when the
	// agent has no memory of the job), ascending.
	AgentDone []int
}

// Encode serialises a StateReport payload.
func (r *StateReport) Encode() []byte {
	buf := []byte{kindStateReport}
	buf = binary.AppendUvarint(buf, uint64(r.Job))
	buf = binary.AppendUvarint(buf, uint64(r.Switch))
	present := byte(0)
	if r.RulePresent {
		present = 1
	}
	buf = append(buf, present)
	buf = binary.AppendUvarint(buf, uint64(r.OutPort))
	buf = binary.AppendUvarint(buf, uint64(len(r.AgentDone)))
	for _, idx := range r.AgentDone {
		buf = binary.AppendUvarint(buf, uint64(idx))
	}
	return buf
}

// DecodeStateReport parses a StateReport payload.
func DecodeStateReport(data []byte) (*StateReport, error) {
	d := decoder{buf: data}
	if k := d.byte(); k != kindStateReport {
		return nil, fmt.Errorf("planwire: payload kind %d, want state report: %w", k, ErrWire)
	}
	r := &StateReport{
		Job:    int(d.uvarint()),
		Switch: topo.NodeID(d.uvarint()),
	}
	r.RulePresent = d.byte() == 1
	r.OutPort = uint16(d.uvarint())
	n := d.uvarint()
	if n > 1<<20 {
		return nil, fmt.Errorf("planwire: state report covers %d nodes: %w", n, ErrWire)
	}
	for i := 0; i < int(n) && d.err == nil; i++ {
		r.AgentDone = append(r.AgentDone, int(d.uvarint()))
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("planwire: %d trailing bytes: %w", len(d.buf)-d.off, ErrWire)
	}
	return r, nil
}

// decoder is a sticky-error cursor over payload bytes, mirroring the
// core plan codec's decoding discipline.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("planwire: truncated payload: %w", ErrWire)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	out := d.buf[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}
