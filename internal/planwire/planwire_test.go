package planwire

import (
	"net"
	"reflect"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/openflow"
	"tsu/internal/topo"
)

func testPush(t *testing.T) *Push {
	t.Helper()
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	p, err := core.PlanByName(in, "peacock", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	parts := p.Partition()
	sp := &parts[0]
	push := &Push{Job: 42, Interval: 3 * time.Millisecond, Part: sp}
	for range sp.Nodes {
		fm := &openflow.FlowMod{
			Match:    openflow.ExactNWDst(net.IPv4(10, 0, 0, 2)),
			Command:  openflow.FlowModify,
			Priority: 100,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortNone,
			Actions:  []openflow.Action{openflow.ActionOutput{Port: 2}},
		}
		push.Mods = append(push.Mods, []*openflow.FlowMod{fm})
	}
	return push
}

func TestPushRoundTrip(t *testing.T) {
	push := testPush(t)
	data, err := EncodePush(push)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePush(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Job != push.Job || got.Interval != push.Interval {
		t.Fatalf("envelope mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Part, push.Part) {
		t.Fatalf("partition mismatch:\n got %+v\nwant %+v", got.Part, push.Part)
	}
	if len(got.Mods) != len(push.Mods) {
		t.Fatalf("%d mod lists, want %d", len(got.Mods), len(push.Mods))
	}
	for i := range got.Mods {
		if len(got.Mods[i]) != 1 || got.Mods[i][0].Match != push.Mods[i][0].Match {
			t.Fatalf("node %d mods mismatch: %+v", i, got.Mods[i])
		}
	}
	if isPush, isReport := Kind(data); !isPush || isReport {
		t.Fatal("push payload misclassified")
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := &Report{
		Job:      7,
		Switch:   3,
		AcksSent: 4,
		AcksRecv: 2,
		DupAcks:  1,
		Nodes: []NodeReport{
			{Index: 2, ReleasedBy: 5, FlowMods: 1, Started: time.Millisecond, Finished: 2 * time.Millisecond},
			{Index: 9, FlowMods: 2, Started: 3 * time.Millisecond, Finished: 5 * time.Millisecond},
		},
	}
	got, err := DecodeReport(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("report mismatch:\n got %+v\nwant %+v", got, r)
	}
	if isPush, isReport := Kind(r.Encode()); isPush || !isReport {
		t.Fatal("report payload misclassified")
	}
}

func TestDecodeRejects(t *testing.T) {
	push := testPush(t)
	data, err := EncodePush(push)
	if err != nil {
		t.Fatal(err)
	}
	report := (&Report{Job: 1, Switch: 2}).Encode()
	cases := []struct {
		name   string
		decode func([]byte) error
		data   []byte
	}{
		{"empty push", asPush, nil},
		{"push as report", asReport, data},
		{"report as push", asPush, report},
		{"truncated push", asPush, data[:len(data)-1]},
		{"trailing push", asPush, append(append([]byte{}, data...), 0xFF)},
		{"truncated report", asReport, report[:len(report)-1]},
		{"trailing report", asReport, append(append([]byte{}, report...), 0xFF)},
		{"corrupted partition", asPush, append([]byte{kindPush, 1, 0, 4}, "XXXX"...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.decode(tc.data) == nil {
				t.Fatal("malformed payload decoded without error")
			}
		})
	}
}

func asPush(b []byte) error   { _, err := DecodePush(b); return err }
func asReport(b []byte) error { _, err := DecodeReport(b); return err }

func TestStateQueryRoundTrip(t *testing.T) {
	q := &StateQuery{Job: 17, NWDst: 0x0a000002}
	data := q.Encode()
	if !IsStateQuery(data) || IsStateReport(data) {
		t.Fatalf("kind peek wrong for state query")
	}
	if push, report := Kind(data); push || report {
		t.Fatalf("state query misidentified as push/report")
	}
	got, err := DecodeStateQuery(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Fatalf("got %+v want %+v", got, q)
	}
	if _, err := DecodeStateQuery(append(data, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeStateQuery(data[:len(data)-1]); err == nil {
		t.Fatal("truncated query accepted")
	}
}

func TestStateReportRoundTrip(t *testing.T) {
	cases := []*StateReport{
		{Job: 17, Switch: 4, RulePresent: true, OutPort: 3, AgentDone: []int{0, 2, 5}},
		{Job: 17, Switch: 9, RulePresent: false},
	}
	for _, r := range cases {
		data := r.Encode()
		if !IsStateReport(data) || IsStateQuery(data) {
			t.Fatalf("kind peek wrong for state report")
		}
		got, err := DecodeStateReport(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("got %+v want %+v", got, r)
		}
		if _, err := DecodeStateReport(append(data, 0)); err == nil {
			t.Fatal("trailing bytes accepted")
		}
		if _, err := DecodeStateReport(data[:len(data)-1]); err == nil {
			t.Fatal("truncated report accepted")
		}
	}
}
