// Command experiments regenerates the reproduction's experiment tables
// (see README.md for the experiment index). Each experiment spins up the
// full stack — controller, switch fleet over loopback TCP, probes — or the pure
// algorithm harness, and prints its table.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E4    # one experiment
//	experiments -seed 7    # change the deterministic seed
//
// Hot-path regressions are diagnosable in-repo: -cpuprofile / -memprofile
// write pprof profiles of the run (go tool pprof <file>), and the
// controller binary exposes /debug/pprof behind its -pprof flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"tsu/internal/experiments"
	"tsu/internal/metrics"
)

var descriptions = map[string]string{
	"E1":  "Figure 1 demo: WayUp vs one-shot under asynchrony, live probes",
	"E2":  "update time of flow tables (paper's stated evaluation)",
	"E3":  "transient-security violations on random waypoint instances",
	"E4":  "rounds vs n: relaxed (Peacock) vs strong (greedy) loop freedom",
	"E5":  "scheduler computation time vs instance size",
	"E6":  "live update time vs number of switches",
	"E7":  "violation dose-response vs control-channel jitter",
	"E9":  "multi-policy updates: joint vs sequential rounds",
	"E12": "optimality gaps: heuristics vs counterexample-guided synthesis",
	"E14": "crash-restart recovery: adopt vs verified rollback at every dispatch boundary",
	"E15": "100k-switch soak: decentralized dispatch under combined loss + crash stress",
}

func main() {
	// realMain keeps the profile-flushing defers ahead of os.Exit,
	// which would otherwise skip them.
	os.Exit(realMain())
}

func realMain() int {
	var (
		run        = flag.String("run", "", "comma-separated experiment ids (default: all)")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		reps       = flag.Int("reps", 3, "repetitions for timing experiments")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close() //nolint:errcheck // profile already flushed
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close() //nolint:errcheck // best-effort profile
			runtime.GC()    // materialize the post-run live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	runners := map[string]func() (*metrics.Table, error){
		"E1":  func() (*metrics.Table, error) { return experiments.E1Fig1(*seed) },
		"E2":  func() (*metrics.Table, error) { return experiments.E2UpdateTime(*reps, *seed) },
		"E3":  func() (*metrics.Table, error) { return experiments.E3Violations(50, *seed) },
		"E4":  func() (*metrics.Table, error) { return experiments.E4Rounds(*seed) },
		"E5":  func() (*metrics.Table, error) { return experiments.E5Compute(*seed) },
		"E6":  func() (*metrics.Table, error) { return experiments.E6UpdateTimeVsN(*seed) },
		"E7":  func() (*metrics.Table, error) { return experiments.E7JitterDose(*seed) },
		"E9":  func() (*metrics.Table, error) { return experiments.E9MultiPolicy(*seed) },
		"E12": func() (*metrics.Table, error) { return experiments.E12SynthGap(*seed) },
		"E14": func() (*metrics.Table, error) {
			res, err := experiments.E14CrashRecovery(0, 0, *seed, 4)
			if err != nil {
				return nil, err
			}
			return res.Table, nil
		},
		"E15": func() (*metrics.Table, error) {
			// The CLI runs the full 100,820-switch tier (about ten
			// seconds); `-run E15` with a coffee in hand.
			res, err := experiments.E15Soak(0, 0, *seed, runtime.GOMAXPROCS(0))
			if err != nil {
				return nil, err
			}
			return res.Table, nil
		},
	}

	var ids []string
	if *run == "" {
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (have E1-E7, E9, E12, E14, E15; E8 is the codec benchmark: go test -bench=E8)\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	}

	failed := false
	for _, id := range ids {
		fmt.Printf("=== %s — %s (seed %d)\n", id, descriptions[id], *seed)
		start := time.Now()
		tbl, err := runners[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Print(tbl.String())
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		return 1
	}
	return 0
}
