// Command controller runs the SDN controller: an OpenFlow listener for
// the switches and the REST API accepting the paper's update messages.
//
// Usage:
//
//	controller -topo fig1 -listen 127.0.0.1:6633 -http 127.0.0.1:8080
//
// Then connect a switch fleet (cmd/switchd) and drive updates
// (cmd/updatectl).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tsu/internal/controller"
	"tsu/internal/journal"
	"tsu/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "controller:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topoSpec  = flag.String("topo", "fig1", "topology spec (fig1, linear:N, ring:N, grid:RxC, reversal:N, staircase:N, nested:N)")
		listen    = flag.String("listen", "127.0.0.1:6633", "OpenFlow listen address")
		httpAddr  = flag.String("http", "127.0.0.1:8080", "REST API listen address")
		pprofAddr = flag.String("pprof", "", "serve /debug/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
		jpath     = flag.String("journal", "", "journal file for durable job state (crash-restart recovery); empty runs in-memory")
		verbose   = flag.Bool("v", false, "verbose logging")
	)
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	g, err := topo.FromSpec(*topoSpec)
	if err != nil {
		return err
	}
	cfg := controller.Config{Topology: g, Logger: logger}
	if *jpath != "" {
		jl, err := journal.Open(*jpath)
		if err != nil {
			return fmt.Errorf("opening journal: %w", err)
		}
		defer jl.Close() //nolint:errcheck // shutdown path
		cfg.Journal = jl
	}
	ctrl, err := controller.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ofAddr, err := ctrl.Start(ctx, *listen)
	if err != nil {
		return err
	}
	fmt.Printf("controller: OpenFlow on %s, topology %s (%d switches)\n", ofAddr, *topoSpec, g.NumNodes())

	if cfg.Journal != nil {
		// Recovery runs once the fleet has (re)connected: mid-flight
		// jobs are reconciled against live switch state, so give the
		// switches a moment to dial back in before deciding anything.
		go func() {
			wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			if err := ctrl.WaitForSwitches(wctx, g.NumNodes()); err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, "controller: recovery proceeding without full fleet:", err)
			}
			cancel()
			stats, err := ctrl.Engine().Recover(ctx)
			if err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, "controller: recovery:", err)
				return
			}
			if stats.Replayed > 0 {
				fmt.Printf("controller: journal replayed %d records: %d jobs terminal, %d requeued, %d adopted, %d rolled back, %d failed\n",
					stats.Replayed, stats.Terminal, stats.Requeued, stats.Adopted, stats.RolledBack, stats.Failed)
			}
		}()
	}

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated (usually loopback-only)
		// address: profiling never rides on the public REST listener.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: mux}
		go func() {
			<-ctx.Done()
			psrv.Close() //nolint:errcheck // shutdown path
		}()
		go func() {
			if err := psrv.ListenAndServe(); err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, "controller: pprof:", err)
			}
		}()
		fmt.Printf("controller: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	srv := &http.Server{Addr: *httpAddr, Handler: ctrl.RESTHandler()}
	go func() {
		<-ctx.Done()
		srv.Close() //nolint:errcheck // shutdown path
	}()
	fmt.Printf("controller: REST on http://%s (POST /v1/updates, GET /v1/updates/{id}/watch, POST /v1/verify, GET /v1/healthz, plus legacy /update routes)\n", *httpAddr)
	if err := srv.ListenAndServe(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
