// Command switchd runs a fleet of simulated OpenFlow switches for a
// topology and connects them to a controller. The fleet shares the
// controller's canonical port map (both derive it from the same
// topology spec), mirroring how the demo's Mininet script and Ryu app
// share the topology.
//
// Usage:
//
//	switchd -topo fig1 -controller 127.0.0.1:6633 \
//	        -jitter 2ms -install 1ms -seed 42
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tsu/internal/netem"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "switchd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topoSpec  = flag.String("topo", "fig1", "topology spec (must match the controller's)")
		ctrlAddr  = flag.String("controller", "127.0.0.1:6633", "controller OpenFlow address")
		jitterMax = flag.Duration("jitter", 2*time.Millisecond, "max per-message control-channel delay (0 disables)")
		install   = flag.Duration("install", time.Millisecond, "mean rule-install latency (0 disables)")
		seed      = flag.Int64("seed", 1, "randomness seed (per-switch sources derive from it)")
		verbose   = flag.Bool("v", false, "verbose logging")
	)
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	g, err := topo.FromSpec(*topoSpec)
	if err != nil {
		return err
	}
	var jitter, installDist netem.Latency
	if *jitterMax > 0 {
		jitter = netem.Uniform{Min: 0, Max: *jitterMax}
	}
	if *install > 0 {
		installDist = netem.Uniform{Min: *install / 2, Max: *install * 3 / 2}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fabric := switchsim.NewFabric(g)
	switches := make([]*switchsim.Switch, 0, g.NumNodes())
	for _, n := range g.Nodes() {
		sw, err := switchsim.NewSwitch(fabric, switchsim.Config{
			Node:           n,
			CtrlLatency:    jitter,
			InstallLatency: installDist,
			Source:         netem.NewSource(*seed*1000003 + int64(n)),
			Logger:         logger,
		})
		if err != nil {
			return err
		}
		if err := sw.Connect(ctx, *ctrlAddr); err != nil {
			return fmt.Errorf("switch %d: %w", n, err)
		}
		switches = append(switches, sw)
	}
	fmt.Printf("switchd: %d switches connected to %s (topology %s)\n", len(switches), *ctrlAddr, *topoSpec)

	<-ctx.Done()
	for _, sw := range switches {
		sw.Stop()
	}
	fmt.Println("switchd: stopped")
	return nil
}
