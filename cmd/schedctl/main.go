// Command schedctl computes and verifies update schedules offline — no
// controller or switches involved. It is the operator's dry-run tool:
// given the old route, the new route and an optional waypoint, it
// prints each algorithm's rounds, the verified guarantees, and any
// counterexample for the one-shot baseline.
//
// Usage:
//
//	schedctl -old 1,2,3,4,5,6,12 -new 1,7,8,3,9,10,11,12 -wp 3
//	schedctl -family reversal:32 -algorithm peacock
//	schedctl -old 1,2,3 -new 1,3 -algorithm optimal -props relaxed-lf
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tsu/internal/core"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schedctl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		oldPath   = flag.String("old", "", "old route, comma-separated datapath ids")
		newPath   = flag.String("new", "", "new route, comma-separated datapath ids")
		waypoint  = flag.Uint64("wp", 0, "waypoint datapath id (0 = none)")
		family    = flag.String("family", "", "generate the instance from a family spec (reversal:N, staircase:N, nested:N) instead of -old/-new")
		algorithm = flag.String("algorithm", "", "one of "+strings.Join(core.Names(), ", ")+" (default: all applicable)")
		propsFlag = flag.String("props", "", "verify against these properties instead of the schedule's own guarantees (comma-separated: no-blackhole, waypoint, relaxed-lf, strong-lf)")
	)
	flag.Parse()

	in, err := buildInstance(*family, *oldPath, *newPath, topo.NodeID(*waypoint))
	if err != nil {
		return err
	}
	fmt.Printf("instance: %s\n", in)
	fmt.Printf("pending switches (%d): %v\n\n", in.NumPending(), in.Pending())

	props, err := parseProps(*propsFlag)
	if err != nil {
		return err
	}

	var algos []string
	if *algorithm != "" {
		algos = []string{*algorithm}
	} else {
		// Every registered scheduler that applies to this instance.
		for _, name := range core.Names() {
			if s, err := core.Lookup(name); err == nil && s.Applicable(in) {
				algos = append(algos, name)
			}
		}
	}

	for _, algo := range algos {
		sched, err := core.ScheduleByName(in, algo, props)
		if err != nil {
			fmt.Printf("%-11s %v\n", algo+":", err)
			continue
		}
		fmt.Printf("%-11s %s\n", algo+":", sched)
		checkProps := props
		if checkProps == 0 {
			checkProps = sched.Guarantees
		}
		if checkProps == 0 {
			// One-shot guarantees nothing; verify it against what the
			// consistent schedulers provide, so the dry run shows what
			// would break.
			checkProps = core.NoBlackhole | core.RelaxedLoopFreedom
			if in.Waypoint != 0 {
				checkProps |= core.WaypointEnforcement
			}
		}
		report := verify.Schedule(in, sched, checkProps, verify.Options{})
		fmt.Printf("            %s\n", report)
		if cex := report.FirstViolation(); cex != nil {
			fmt.Printf("            counterexample walk: %v\n", cex.Walk)
		}
	}
	return nil
}

func buildInstance(family, oldStr, newStr string, wp topo.NodeID) (*core.Instance, error) {
	if family != "" {
		inst, ok, err := topo.UpdateFromSpec(family)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%q is not a two-path family spec", family)
		}
		return core.NewInstance(inst.Old, inst.New, wp)
	}
	old, err := topo.ParsePath(oldStr)
	if err != nil {
		return nil, fmt.Errorf("-old: %w", err)
	}
	next, err := topo.ParsePath(newStr)
	if err != nil {
		return nil, fmt.Errorf("-new: %w", err)
	}
	return core.NewInstance(old, next, wp)
}

func parseProps(s string) (core.Property, error) {
	if s == "" {
		return 0, nil
	}
	var p core.Property
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "no-blackhole":
			p |= core.NoBlackhole
		case "waypoint":
			p |= core.WaypointEnforcement
		case "relaxed-lf":
			p |= core.RelaxedLoopFreedom
		case "strong-lf":
			p |= core.StrongLoopFreedom
		default:
			return 0, fmt.Errorf("unknown property %q", name)
		}
	}
	return p, nil
}
