// Command schedctl computes and verifies update schedules offline — no
// controller or switches involved. It is the operator's dry-run tool:
// given the old route, the new route and an optional waypoint, it
// prints each algorithm's rounds, the verified guarantees, and any
// counterexample for the one-shot baseline.
//
// With -submit the plan turns into action: the chosen update is sent
// to a live controller through the typed /v1 client SDK and its
// round-by-round progress streams back.
//
// Usage:
//
//	schedctl -old 1,2,3,4,5,6,12 -new 1,7,8,3,9,10,11,12 -wp 3
//	schedctl -old 1,2,3,4,5,6,12 -new 1,7,8,3,9,10,11,12 -wp 3 -algo synth -gap
//	schedctl -family reversal:32 -algorithm peacock
//	schedctl -old 1,2,3 -new 1,3 -algorithm optimal -props relaxed-lf
//	schedctl -old 1,2,3 -new 1,4,3 -algorithm peacock -submit \
//	         -server http://127.0.0.1:8080 -nwdst 10.0.0.2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tsu/internal/api"
	"tsu/internal/client"
	"tsu/internal/core"
	"tsu/internal/synth"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schedctl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		oldPath   = flag.String("old", "", "old route, comma-separated datapath ids")
		newPath   = flag.String("new", "", "new route, comma-separated datapath ids")
		waypoint  = flag.Uint64("wp", 0, "waypoint datapath id (0 = none)")
		family    = flag.String("family", "", "generate the instance from a family spec (reversal:N, staircase:N, nested:N) instead of -old/-new")
		algorithm = flag.String("algorithm", "", "one of "+strings.Join(core.Names(), ", ")+" (default: all applicable)")
		gap       = flag.Bool("gap", false, "print the optimality-gap table: every heuristic's plan vs the synthesized optimum, then exit")
		propsFlag = flag.String("props", "", "verify against these properties instead of the schedule's own guarantees (comma-separated: no-blackhole, waypoint, relaxed-lf, strong-lf)")
		planFlag  = flag.String("plan", "", "execution plan shape, for both the printed shape and -submit: layered (default) or sparse")
		modeFlag  = flag.String("mode", "", "dispatch path, for both the printed message counts and -submit: controller (default) or decentralized")
		submit    = flag.Bool("submit", false, "submit the update to a live controller after the dry run (uses -algorithm, or the instance default when unset)")
		server    = flag.String("server", "http://127.0.0.1:8080", "controller REST base URL for -submit")
		nwDst     = flag.String("nwdst", "10.0.0.2", "flow destination IPv4 address for -submit")
		interval  = flag.Duration("interval", 0, "pause between rounds for -submit")
		cleanup   = flag.Bool("cleanup", false, "append a garbage-collection round for -submit")
		timeout   = flag.Duration("timeout", 60*time.Second, "completion timeout for -submit")
	)
	flag.StringVar(algorithm, "algo", "", "alias for -algorithm")
	flag.Parse()

	in, err := buildInstance(*family, *oldPath, *newPath, topo.NodeID(*waypoint))
	if err != nil {
		return err
	}
	fmt.Printf("instance: %s\n", in)
	fmt.Printf("pending switches (%d): %v\n\n", in.NumPending(), in.Pending())

	if *gap {
		rep, err := synth.Compare(in, synth.Options{})
		if err != nil {
			return err
		}
		fmt.Print(rep.Table())
		return nil
	}

	props, err := parseProps(*propsFlag)
	if err != nil {
		return err
	}

	var algos []string
	if *algorithm != "" {
		algos = []string{*algorithm}
	} else {
		// Every registered scheduler that applies to this instance.
		for _, name := range core.Names() {
			if s, err := core.Lookup(name); err == nil && s.Applicable(in) {
				algos = append(algos, name)
			}
		}
	}

	for _, algo := range algos {
		sched, err := core.ScheduleByName(in, algo, props)
		if err != nil {
			fmt.Printf("%-11s %v\n", algo+":", err)
			continue
		}
		fmt.Printf("%-11s %s\n", algo+":", sched)
		// Plan shape next to the rounds, matching what -submit with
		// the current -plan flag would execute: the layered conversion
		// by default, the scheduler's sparse DAG with -plan sparse.
		if plan, err := core.PlanByName(in, algo, props, *planFlag == "sparse"); err == nil {
			fmt.Printf("            plan: depth=%d width=%d critical=%d nodes=%d edges=%d sparse=%t\n",
				plan.Depth(), plan.Width(), plan.CriticalPath(), plan.NumNodes(), plan.NumEdges(), plan.Sparse)
			// Per-switch message counts for what -submit with the
			// current -mode would exchange: decentralized collapses the
			// control channel to push + report per switch, with the
			// dependency acks travelling switch-to-switch.
			if *modeFlag == "decentralized" {
				for _, part := range plan.Partition() {
					peer := 0
					for _, pn := range part.Nodes {
						for _, e := range pn.OutEdges {
							if e.Switch != part.Switch {
								peer++
							}
						}
					}
					fmt.Printf("            messages sw=%d: ctrl=2 peer=%d\n", part.Switch, peer)
				}
			}
		}
		checkProps := props
		if checkProps == 0 {
			checkProps = sched.Guarantees
		}
		if checkProps == 0 {
			// One-shot guarantees nothing; verify it against what the
			// consistent schedulers provide, so the dry run shows what
			// would break.
			checkProps = core.NoBlackhole | core.RelaxedLoopFreedom
			if in.Waypoint != 0 {
				checkProps |= core.WaypointEnforcement
			}
		}
		report := verify.Schedule(in, sched, checkProps, verify.Options{})
		fmt.Printf("            %s\n", report)
		if cex := report.FirstViolation(); cex != nil {
			fmt.Printf("            counterexample walk: %v\n", cex.Walk)
		}
	}

	if *submit {
		return submitUpdate(in, *algorithm, *propsFlag, *planFlag, *modeFlag, *server, *nwDst, *interval, *cleanup, *timeout)
	}
	return nil
}

// submitUpdate sends the instance to a live controller through the
// typed client SDK and streams round progress until the job finishes.
// The -props selection travels with the request, so the server
// schedules against the same properties the local dry run verified.
func submitUpdate(in *core.Instance, algorithm, propsFlag, planFlag, modeFlag, server, nwDst string, interval time.Duration, cleanup bool, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var propNames []string
	if propsFlag != "" {
		for _, p := range strings.Split(propsFlag, ",") {
			propNames = append(propNames, strings.TrimSpace(p))
		}
	}
	c := client.New(server, client.WithTimeout(timeout))
	resp, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{
		Updates: []api.FlowUpdate{{
			OldPath:    api.FromPath(in.Old),
			NewPath:    api.FromPath(in.New),
			Waypoint:   uint64(in.Waypoint),
			Algorithm:  algorithm,
			NWDst:      nwDst,
			Properties: propNames,
			Plan:       planFlag,
			Mode:       modeFlag,
		}},
		Interval: int(interval.Milliseconds()),
		Cleanup:  cleanup,
	})
	if err != nil {
		return fmt.Errorf("submitting: %w", err)
	}
	acc := resp.Updates[0]
	fmt.Printf("\nsubmitted as job %d: algorithm=%s guarantees=%s\n", acc.ID, acc.Algorithm, acc.Guarantees)
	if acc.Plan != nil {
		fmt.Printf("plan: depth=%d width=%d critical=%d sparse=%t\n",
			acc.Plan.Depth, acc.Plan.Width, acc.Plan.CriticalPath, acc.Plan.Sparse)
	}
	st, err := c.WaitRounds(ctx, acc.ID, func(r api.RoundStatus) {
		fmt.Printf("  round %d: %dµs (switches %v)\n", r.Round, r.Micros, r.Switches)
	})
	if err != nil {
		return err
	}
	if st.State != "done" {
		return fmt.Errorf("job %d failed: %s", acc.ID, st.Error)
	}
	fmt.Printf("job %d done in %dµs\n", acc.ID, st.TotalMicros)
	if st.Messages != nil {
		fmt.Printf("messages: ctrl=%d peer=%d\n", st.Messages.Ctrl, st.Messages.Peer)
		for _, mc := range st.MessagesPerSwitch {
			fmt.Printf("  sw=%d: ctrl=%d peer=%d\n", mc.Switch, mc.Ctrl, mc.Peer)
		}
	}
	return nil
}

func buildInstance(family, oldStr, newStr string, wp topo.NodeID) (*core.Instance, error) {
	if family != "" {
		inst, ok, err := topo.UpdateFromSpec(family)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%q is not a two-path family spec", family)
		}
		return core.NewInstance(inst.Old, inst.New, wp)
	}
	old, err := topo.ParsePath(oldStr)
	if err != nil {
		return nil, fmt.Errorf("-old: %w", err)
	}
	next, err := topo.ParsePath(newStr)
	if err != nil {
		return nil, fmt.Errorf("-new: %w", err)
	}
	return core.NewInstance(old, next, wp)
}

func parseProps(s string) (core.Property, error) {
	if s == "" {
		return 0, nil
	}
	return core.ParseProperties(strings.Split(s, ","))
}
