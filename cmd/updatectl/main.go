// Command updatectl submits policy updates to the controller's /v1
// REST API through the typed client SDK — the client side of the
// paper's update message, grown to batches — and streams the job's
// round/barrier progress until completion.
//
// Usage:
//
//	updatectl -server http://127.0.0.1:8080 \
//	          -old 1,2,3,4,5,6,12 -new 1,7,8,3,9,10,11,12 -wp 3 \
//	          -algorithm wayup -nwdst 10.0.0.2 -interval 10ms
//
//	# several flows in one batch: entries separated by ';' as
//	# old|new[|wp[|nwdst[|algorithm]]]
//	updatectl -batch '1,2,3|1,4,3||10.0.0.2;5,6,7|5,8,7||10.0.0.9'
//
// The old policy must already be installed (see updatectl -install).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tsu/internal/api"
	"tsu/internal/client"
	"tsu/internal/core"
	_ "tsu/internal/synth" // registers the synth scheduler so -algorithm lists it
	"tsu/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "updatectl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		server    = flag.String("server", "http://127.0.0.1:8080", "controller REST base URL")
		oldPath   = flag.String("old", "", "old route, comma-separated datapath ids")
		newPath   = flag.String("new", "", "new route, comma-separated datapath ids")
		waypoint  = flag.Uint64("wp", 0, "waypoint datapath id (0 = none)")
		algorithm = flag.String("algorithm", "", strings.Join(core.Names(), " | ")+" | two-phase (default: wayup with waypoint, else peacock)")
		nwDst     = flag.String("nwdst", "10.0.0.2", "flow destination IPv4 address")
		batch     = flag.String("batch", "", "batch entries 'old|new[|wp[|nwdst[|algorithm]]]' separated by ';' (overrides -old/-new)")
		planShape = flag.String("plan", "", "execution plan shape: layered (default) or sparse (ack-driven dependency DAG where the scheduler supports it)")
		mode      = flag.String("mode", "", "dispatch path: controller (default) or decentralized (switches release each other peer-to-peer from broadcast partitions)")
		installs  = flag.Bool("installs", false, "stream per-switch installs (with releasing edges) instead of per-round summaries")
		interval  = flag.Duration("interval", 0, "pause between rounds")
		install   = flag.Bool("install", false, "install each old path as the active policy first (POST /v1/policies)")
		host      = flag.String("host", "", "destination host name for -install (e.g. h2)")
		cleanup   = flag.Bool("cleanup", false, "append a garbage-collection round deleting stale rules")
		dryRun    = flag.Bool("dry-run", false, "plan only: print schedules, submit nothing")
		healthz   = flag.Bool("healthz", false, "print the controller's health probe (uptime, journal, recovered jobs) and exit")
		timeout   = flag.Duration("timeout", 60*time.Second, "completion timeout")
	)
	flag.Parse()

	if *healthz {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		return printHealthz(ctx, client.New(*server, client.WithTimeout(*timeout)))
	}

	updates, err := parseUpdates(*batch, *oldPath, *newPath, *waypoint, *nwDst, *algorithm)
	if err != nil {
		return err
	}
	for i := range updates {
		updates[i].Plan = *planShape
		updates[i].Mode = *mode
	}

	// Algorithm names are validated by the server (structured 400 with
	// CodeUnknownAlgorithm): its registry, not this binary's compiled-in
	// copy, is the source of truth — a controller with extra schedulers
	// registered stays drivable by a stock updatectl.

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*server, client.WithTimeout(*timeout))

	if *install {
		// -host names one delivery host; with several flows it would
		// install the wrong egress port for all but one of them.
		if *host != "" && len(updates) > 1 {
			return fmt.Errorf("-host applies to a single flow; omit it when installing a multi-flow -batch")
		}
		// Fail fast before mutating any switch: a server-side dry run
		// validates every entry (paths, waypoints, algorithm names)
		// against the controller's own registry.
		if _, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{Updates: updates, DryRun: true}); err != nil {
			return fmt.Errorf("validating batch before -install: %w", err)
		}
		for _, u := range updates {
			req := api.PolicyRequest{Path: u.OldPath, NWDst: u.NWDst, Host: *host}
			if err := c.InstallPolicy(ctx, req); err != nil {
				return fmt.Errorf("installing old policy: %w", err)
			}
			fmt.Printf("installed old policy %v for %s\n", u.OldPath, u.NWDst)
		}
	}

	resp, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{
		Updates:  updates,
		Interval: int(interval.Milliseconds()),
		Cleanup:  *cleanup,
		DryRun:   *dryRun,
	})
	if err != nil {
		return err
	}
	for i, acc := range resp.Updates {
		if *dryRun {
			fmt.Printf("flow %s planned: algorithm=%s guarantees=%s rounds=%d%s\n",
				updates[i].NWDst, acc.Algorithm, acc.Guarantees, len(acc.Rounds), planSummary(acc.Plan))
		} else {
			fmt.Printf("job %d accepted (%s): algorithm=%s guarantees=%s rounds=%d%s\n",
				acc.ID, updates[i].NWDst, acc.Algorithm, acc.Guarantees, len(acc.Rounds), planSummary(acc.Plan))
		}
		for r, round := range acc.Rounds {
			fmt.Printf("  round %d: %v\n", r, round)
		}
		if acc.Compromise {
			fmt.Println("  note: loop freedom compromised (waypoint enforcement kept)")
		}
	}
	if *dryRun {
		return nil
	}

	// Stream every job's progress; jobs of a batch execute concurrently
	// when their flows are disjoint, so watch them all before judging.
	failed := 0
	for _, acc := range resp.Updates {
		if err := watchJob(ctx, c, acc.ID, *installs); err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: job %d: %v\n", acc.ID, err)
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", failed, len(resp.Updates))
	}
	return nil
}

// planSummary renders a plan shape for the accept line, e.g.
// " plan[depth=2 width=5 critical=1 sparse]".
func planSummary(p *api.PlanShape) string {
	if p == nil {
		return ""
	}
	s := fmt.Sprintf(" plan[depth=%d width=%d critical=%d", p.Depth, p.Width, p.CriticalPath)
	if p.Sparse {
		s += " sparse"
	}
	return s + "]"
}

// watchJob streams one job's progress — per-round summaries, or
// per-switch installs with their releasing edges — and returns an
// error when the job fails.
func watchJob(ctx context.Context, c *client.Client, id int, installs bool) error {
	onRound := func(r api.RoundStatus) {
		fmt.Printf("job %d round %d: %dµs (%d switches)\n", id, r.Round, r.Micros, len(r.Switches))
	}
	var onInstall func(api.InstallStatus)
	if installs {
		onRound = nil
		onInstall = func(is api.InstallStatus) {
			release := "dispatched immediately"
			if is.ReleasedBy != 0 {
				release = fmt.Sprintf("released by %d", is.ReleasedBy)
			}
			fmt.Printf("job %d install sw=%d layer=%d: %dµs (%s)\n", id, is.Switch, is.Layer, is.Micros, release)
		}
	}
	st, err := c.WaitProgress(ctx, id, onRound, onInstall)
	if err != nil {
		return err
	}
	if st.State != "done" {
		printFailure(id, st.Failure)
		return fmt.Errorf("failed: %s", st.Error)
	}
	fmt.Printf("job %d done in %dµs%s\n", id, st.TotalMicros, messageSummary(st))
	if installs {
		for _, mc := range st.MessagesPerSwitch {
			fmt.Printf("job %d messages sw=%d: ctrl=%d peer=%d\n", id, mc.Switch, mc.Ctrl, mc.Peer)
		}
	}
	return nil
}

// printHealthz fetches and renders the ops probe: switch count,
// uptime, journal status, and what the last restart recovered.
func printHealthz(ctx context.Context, c *client.Client) error {
	h, err := c.Healthz(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("status: %s\n", h.Status)
	fmt.Printf("switches: %d\n", h.Switches)
	fmt.Printf("uptime: %s\n", h.Uptime().Round(time.Millisecond))
	switch {
	case h.Journal == nil || !h.Journal.Enabled:
		fmt.Println("journal: disabled (in-memory)")
	default:
		fmt.Printf("journal: %s (%d bytes)\n", h.Journal.Path, h.Journal.SizeBytes)
	}
	if h.RecoveredJobs > 0 || h.AdoptedJobs > 0 {
		fmt.Printf("recovered jobs: %d (%d adopted mid-flight)\n", h.RecoveredJobs, h.AdoptedJobs)
	}
	return nil
}

// printFailure renders a failed job's structured abort outcome: how
// far recovery got, what was installed and rolled back, and — for
// stuck jobs — which switches keep their new rules and what blocks
// each one's uninstall.
func printFailure(id int, f *api.FailureReport) {
	if f == nil {
		return
	}
	verified := ""
	if f.RollbackVerified {
		verified = " (rollback verified safe)"
	}
	fmt.Fprintf(os.Stderr, "job %d %s%s: installed=%v rolled_back=%v\n",
		id, f.Phase, verified, f.Installed, f.RolledBack)
	if f.TriggeringFault != "" {
		fmt.Fprintf(os.Stderr, "job %d fault: %s\n", id, f.TriggeringFault)
	}
	for _, s := range f.Stuck {
		if len(s.WaitingOn) > 0 {
			fmt.Fprintf(os.Stderr, "job %d stuck sw=%d: uninstall blocked by %v\n", id, s.Switch, s.WaitingOn)
		} else {
			fmt.Fprintf(os.Stderr, "job %d stuck sw=%d\n", id, s.Switch)
		}
	}
}

// messageSummary renders the job's message-count breakdown for the
// done line, e.g. " messages[ctrl=24 peer=7]".
func messageSummary(st *api.JobStatus) string {
	if st.Messages == nil {
		return ""
	}
	s := fmt.Sprintf(" messages[ctrl=%d", st.Messages.Ctrl)
	if st.Messages.Peer > 0 || st.Mode == "decentralized" {
		s += fmt.Sprintf(" peer=%d", st.Messages.Peer)
	}
	return s + "]"
}

// parseUpdates builds the batch: either from -batch entries or from
// the single-flow flags.
func parseUpdates(batch, oldStr, newStr string, wp uint64, nwDst, algorithm string) ([]api.FlowUpdate, error) {
	if batch == "" {
		old, err := parseIDs(oldStr)
		if err != nil {
			return nil, fmt.Errorf("-old: %w", err)
		}
		next, err := parseIDs(newStr)
		if err != nil {
			return nil, fmt.Errorf("-new: %w", err)
		}
		return []api.FlowUpdate{{OldPath: old, NewPath: next, Waypoint: wp, NWDst: nwDst, Algorithm: algorithm}}, nil
	}
	var updates []api.FlowUpdate
	for i, entry := range strings.Split(batch, ";") {
		fields := strings.Split(entry, "|")
		if len(fields) < 2 {
			return nil, fmt.Errorf("-batch entry %d: want old|new[|wp[|nwdst[|algorithm]]], got %q", i, entry)
		}
		// Entries inherit every single-flow flag (-nwdst, -algorithm,
		// -wp); fields 3-5 override per entry.
		u := api.FlowUpdate{NWDst: nwDst, Algorithm: algorithm, Waypoint: wp}
		var err error
		if u.OldPath, err = parseIDs(fields[0]); err != nil {
			return nil, fmt.Errorf("-batch entry %d old: %w", i, err)
		}
		if u.NewPath, err = parseIDs(fields[1]); err != nil {
			return nil, fmt.Errorf("-batch entry %d new: %w", i, err)
		}
		if len(fields) > 2 && fields[2] != "" {
			if u.Waypoint, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
				return nil, fmt.Errorf("-batch entry %d wp: %w", i, err)
			}
		}
		if len(fields) > 3 && fields[3] != "" {
			u.NWDst = fields[3]
		}
		if len(fields) > 4 && fields[4] != "" {
			u.Algorithm = fields[4]
		}
		updates = append(updates, u)
	}
	return updates, nil
}

func parseIDs(s string) ([]uint64, error) {
	p, err := topo.ParsePath(s)
	if err != nil {
		return nil, err
	}
	return api.FromPath(p), nil
}
