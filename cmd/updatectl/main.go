// Command updatectl submits policy updates to the controller's REST API
// — the client side of the paper's update message — and follows the
// job's round/barrier progress until completion.
//
// Usage:
//
//	updatectl -server http://127.0.0.1:8080 \
//	          -old 1,2,3,4,5,6,12 -new 1,7,8,3,9,10,11,12 -wp 3 \
//	          -algorithm wayup -nwdst 10.0.0.2 -interval 10ms
//
// The old policy must already be installed (see updatectl -install).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"tsu/internal/controller"
	"tsu/internal/core"
	"tsu/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "updatectl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		server    = flag.String("server", "http://127.0.0.1:8080", "controller REST base URL")
		oldPath   = flag.String("old", "", "old route, comma-separated datapath ids")
		newPath   = flag.String("new", "", "new route, comma-separated datapath ids")
		waypoint  = flag.Uint64("wp", 0, "waypoint datapath id (0 = none)")
		algorithm = flag.String("algorithm", "", strings.Join(core.Names(), " | ")+" | two-phase (default: wayup with waypoint, else peacock)")
		nwDst     = flag.String("nwdst", "10.0.0.2", "flow destination IPv4 address")
		interval  = flag.Duration("interval", 0, "pause between rounds")
		install   = flag.Bool("install", false, "install -old as the active policy first (POST /policy)")
		host      = flag.String("host", "", "destination host name for -install (e.g. h2)")
		cleanup   = flag.Bool("cleanup", false, "append a garbage-collection round deleting stale rules")
		timeout   = flag.Duration("timeout", 60*time.Second, "completion timeout")
	)
	flag.Parse()

	old, err := topo.ParsePath(*oldPath)
	if err != nil {
		return fmt.Errorf("-old: %w", err)
	}
	next, err := topo.ParsePath(*newPath)
	if err != nil {
		return fmt.Errorf("-new: %w", err)
	}

	// Fail fast on unknown algorithms before touching the server; the
	// registry is the single source of scheduler names ("two-phase" is
	// the controller's tagging fallback, not a round scheduler).
	if *algorithm != "" && *algorithm != "two-phase" {
		if _, err := core.Lookup(*algorithm); err != nil {
			return fmt.Errorf("-algorithm: %w", err)
		}
	}

	if *install {
		req := controller.PolicyRequest{Path: toUint64(old), NWDst: *nwDst, Host: *host}
		if err := postJSON(*server+"/policy", req, nil); err != nil {
			return fmt.Errorf("installing old policy: %w", err)
		}
		fmt.Printf("installed old policy %v for %s\n", old, *nwDst)
	}

	req := controller.UpdateRequest{
		OldPath:   toUint64(old),
		NewPath:   toUint64(next),
		Waypoint:  *waypoint,
		Interval:  int(interval.Milliseconds()),
		Algorithm: *algorithm,
		NWDst:     *nwDst,
		Cleanup:   *cleanup,
	}
	var resp controller.UpdateResponse
	if err := postJSON(*server+"/update", req, &resp); err != nil {
		return err
	}
	fmt.Printf("job %d accepted: algorithm=%s guarantees=%s rounds=%d\n",
		resp.ID, resp.Algorithm, resp.Guarantees, len(resp.Rounds))
	for i, r := range resp.Rounds {
		fmt.Printf("  round %d: %v\n", i, r)
	}
	if resp.Compromise {
		fmt.Println("  note: loop freedom compromised (waypoint enforcement kept)")
	}

	deadline := time.Now().Add(*timeout)
	for {
		var st controller.JobStatus
		if err := getJSON(fmt.Sprintf("%s/update/%d", *server, resp.ID), &st); err != nil {
			return err
		}
		switch st.State {
		case "done":
			fmt.Printf("job %d done in %dµs\n", st.ID, st.TotalMicros)
			for _, r := range st.Rounds {
				fmt.Printf("  round %d: %dµs (%d switches)\n", r.Round, r.Micros, len(r.Switches))
			}
			return nil
		case "failed":
			return fmt.Errorf("job %d failed: %s", st.ID, st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %d still %s after %v", st.ID, st.State, *timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func toUint64(p topo.Path) []uint64 {
	out := make([]uint64, len(p))
	for i, n := range p {
		out[i] = uint64(n)
	}
	return out
}

func postJSON(url string, body, into any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %s (%s)", url, resp.Status, e.Error)
	}
	if into != nil {
		return json.NewDecoder(resp.Body).Decode(into)
	}
	return nil
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}
