// Command benchjson converts `go test -bench -benchmem` output on
// stdin into the repository's BENCH_*.json trajectory format: one
// entry per benchmark mapping its name to ns/op, B/op, allocs/op, and
// every domain metric the benchmark reported via b.ReportMetric
// (violations/op, rounds, events, states, ...). Future PRs diff these
// files to see the perf trajectory.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson -out BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements. B/op and allocs/op
// are pointers so a recorded zero — the zero-alloc steady states this
// repository pins — is distinguishable from -benchmem being absent.
type Result struct {
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     *float64           `json:"b_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the emitted JSON document.
type File struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	f := File{
		Schema:     "tsu-bench/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]Result{},
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, res, err := parseBenchLine(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
			continue
		}
		res.Package = pkg
		key := name
		if _, dup := f.Benchmarks[key]; dup && pkg != "" {
			key = pkg + ":" + name
		}
		f.Benchmarks[key] = res
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(f, "", "  ") // map keys marshal sorted: stable diffs
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc) //nolint:errcheck // stdout
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `BenchmarkName-P  N  v1 unit1  v2 unit2 …`
// line into its name and measurements. The trailing `-P` GOMAXPROCS
// suffix is stripped from the name: keys must match across machines
// with different core counts, or trajectory diffs would silently
// compare nothing.
func parseBenchLine(line string) (string, Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", Result{}, fmt.Errorf("want 'name iters (value unit)+', got %d fields", len(fields))
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, fmt.Errorf("iterations: %w", err)
	}
	res := Result{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BPerOp = ptr(v)
		case "allocs/op":
			res.AllocsOp = ptr(v)
		case "MB/s":
			// throughput: keep under its own metric name
			metric(&res, "mb_per_s", v)
		default:
			metric(&res, unit, v)
		}
	}
	return name, res, nil
}

func metric(r *Result, name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

func ptr(v float64) *float64 { return &v }
