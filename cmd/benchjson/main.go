// Command benchjson converts `go test -bench -benchmem` output on
// stdin into the repository's BENCH_*.json trajectory format: one
// entry per benchmark mapping its name to ns/op, B/op, allocs/op, and
// every domain metric the benchmark reported via b.ReportMetric
// (violations/op, rounds, events, states, ...). Future PRs diff these
// files to see the perf trajectory.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson -out BENCH_5.json
//
// With -diff, benchjson instead compares two BENCH files and reports
// per-benchmark ns/op and allocs/op movement — the perf-trajectory
// check CI runs (non-gating) against the previous PR's snapshot:
//
//	benchjson -diff BENCH_4.json BENCH_5.json
//	benchjson -diff -threshold 0.25 -fail-on-regress old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements. B/op and allocs/op
// are pointers so a recorded zero — the zero-alloc steady states this
// repository pins — is distinguishable from -benchmem being absent.
type Result struct {
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     *float64           `json:"b_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the emitted JSON document.
type File struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	diff := flag.Bool("diff", false, "compare two BENCH files: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 0.15, "with -diff: relative ns/op movement below this is reported as noise")
	failOnRegress := flag.Bool("fail-on-regress", false, "with -diff: exit non-zero when a regression exceeds the threshold")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff wants exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressions, err := diffFiles(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressions > 0 && *failOnRegress {
			os.Exit(1)
		}
		return
	}
	f := File{
		Schema:     "tsu-bench/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]Result{},
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, res, err := parseBenchLine(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
			continue
		}
		res.Package = pkg
		key := name
		if _, dup := f.Benchmarks[key]; dup && pkg != "" {
			key = pkg + ":" + name
		}
		f.Benchmarks[key] = res
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(f, "", "  ") // map keys marshal sorted: stable diffs
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc) //nolint:errcheck // stdout
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `BenchmarkName-P  N  v1 unit1  v2 unit2 …`
// line into its name and measurements. The trailing `-P` GOMAXPROCS
// suffix is stripped from the name: keys must match across machines
// with different core counts, or trajectory diffs would silently
// compare nothing.
func parseBenchLine(line string) (string, Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", Result{}, fmt.Errorf("want 'name iters (value unit)+', got %d fields", len(fields))
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, fmt.Errorf("iterations: %w", err)
	}
	res := Result{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BPerOp = ptr(v)
		case "allocs/op":
			res.AllocsOp = ptr(v)
		case "MB/s":
			// throughput: keep under its own metric name
			metric(&res, "mb_per_s", v)
		default:
			metric(&res, unit, v)
		}
	}
	return name, res, nil
}

func metric(r *Result, name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

func ptr(v float64) *float64 { return &v }

// diffFiles compares two BENCH snapshots and writes a per-benchmark
// movement report: ns/op relative change plus any allocs/op change
// (alloc counts are pinned budgets, so every alloc movement is
// reported regardless of the timing threshold). Benchmarks present in
// only one file are listed by name as ADDED or REMOVED — a renamed or
// deleted benchmark must show up in the trajectory, not silently drop
// out of the comparison. It returns the number of regressions —
// benchmarks slower than the threshold or allocating more than before.
func diffFiles(w io.Writer, oldPath, newPath string, threshold float64) (regressions int, err error) {
	oldF, err := readBenchFile(oldPath)
	if err != nil {
		return 0, err
	}
	newF, err := readBenchFile(newPath)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(newF.Benchmarks))
	for name := range newF.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var added, faster, slower, allocMoves int
	fmt.Fprintf(w, "benchjson diff: %s -> %s (threshold ±%.0f%% ns/op)\n", oldPath, newPath, threshold*100)
	for _, name := range names {
		nb := newF.Benchmarks[name]
		ob, ok := oldF.Benchmarks[name]
		if !ok {
			added++
			fmt.Fprintf(w, "  %-60s ADDED (%.0f ns/op)\n", name, nb.NsPerOp)
			continue
		}
		var notes []string
		if ob.NsPerOp > 0 && nb.NsPerOp > 0 {
			rel := nb.NsPerOp/ob.NsPerOp - 1
			if rel >= threshold {
				slower++
				regressions++
				notes = append(notes, fmt.Sprintf("ns/op %+.1f%% (%.0f -> %.0f) REGRESSION", rel*100, ob.NsPerOp, nb.NsPerOp))
			} else if rel <= -threshold {
				faster++
				notes = append(notes, fmt.Sprintf("ns/op %+.1f%% (%.0f -> %.0f)", rel*100, ob.NsPerOp, nb.NsPerOp))
			}
		}
		if ob.AllocsOp != nil && nb.AllocsOp != nil && *ob.AllocsOp != *nb.AllocsOp {
			allocMoves++
			note := fmt.Sprintf("allocs/op %.0f -> %.0f", *ob.AllocsOp, *nb.AllocsOp)
			if *nb.AllocsOp > *ob.AllocsOp {
				regressions++
				note += " REGRESSION"
			}
			notes = append(notes, note)
		}
		if len(notes) > 0 {
			fmt.Fprintf(w, "  %-60s %s\n", name, strings.Join(notes, "; "))
		}
	}
	var gone []string
	for name := range oldF.Benchmarks {
		if _, ok := newF.Benchmarks[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "  %-60s REMOVED (was %.0f ns/op)\n", name, oldF.Benchmarks[name].NsPerOp)
	}
	removed := len(gone)
	fmt.Fprintf(w, "compared %d benchmarks: %d faster, %d slower, %d alloc changes, %d added, %d removed\n",
		len(names)-added, faster, slower, allocMoves, added, removed)
	return regressions, nil
}

func readBenchFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "tsu-bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
	return &f, nil
}
