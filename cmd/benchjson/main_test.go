package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffFilesAddedRemoved pins the asymmetric-file behavior: a
// benchmark present in only one snapshot is reported by name as ADDED
// or REMOVED, is excluded from the movement comparison, and never
// counts as a regression.
func TestDiffFilesAddedRemoved(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", `{
		"schema": "tsu-bench/v1",
		"benchmarks": {
			"BenchmarkShared":  {"iterations": 100, "ns_per_op": 1000},
			"BenchmarkRetired": {"iterations": 100, "ns_per_op": 2500}
		}
	}`)
	newPath := writeBench(t, dir, "new.json", `{
		"schema": "tsu-bench/v1",
		"benchmarks": {
			"BenchmarkShared": {"iterations": 100, "ns_per_op": 1010},
			"BenchmarkFresh":  {"iterations": 100, "ns_per_op": 700}
		}
	}`)
	var buf strings.Builder
	regressions, err := diffFiles(&buf, oldPath, newPath, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Errorf("added/removed benchmarks counted as %d regressions", regressions)
	}
	out := buf.String()
	for _, want := range []string{
		"BenchmarkFresh",
		"ADDED (700 ns/op)",
		"BenchmarkRetired",
		"REMOVED (was 2500 ns/op)",
		"compared 1 benchmarks: 0 faster, 0 slower, 0 alloc changes, 1 added, 1 removed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

// TestDiffFilesRegression keeps the gating behavior honest alongside
// the added/removed reporting: a shared benchmark past the threshold
// still counts.
func TestDiffFilesRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", `{
		"schema": "tsu-bench/v1",
		"benchmarks": {"BenchmarkHot": {"iterations": 100, "ns_per_op": 1000, "allocs_per_op": 0}}
	}`)
	newPath := writeBench(t, dir, "new.json", `{
		"schema": "tsu-bench/v1",
		"benchmarks": {"BenchmarkHot": {"iterations": 100, "ns_per_op": 1400, "allocs_per_op": 2}}
	}`)
	var buf strings.Builder
	regressions, err := diffFiles(&buf, oldPath, newPath, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 2 {
		t.Errorf("got %d regressions, want 2 (ns/op and allocs/op):\n%s", regressions, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("output does not flag the regression:\n%s", buf.String())
	}
}
