// Package tsu reproduces "Towards Transiently Secure Updates in
// Asynchronous SDNs" (Shukla, Schütze, Ludwig, Dudycz, Schmid,
// Feldmann — SIGCOMM 2016): a controller that installs routing-policy
// updates in barrier-delimited rounds computed by consistency-
// preserving schedulers (WayUp for waypoint enforcement, Peacock for
// relaxed loop freedom), so that an asynchronous control channel can
// never expose a transiently insecure forwarding state.
//
// Execution is plan-shaped: core.Plan is a dependency DAG of
// per-switch installs whose reachable transient states are the DAG's
// order ideals. Round schedules convert losslessly to layered plans
// (bit-identical to the paper's global-barrier rounds), while
// PlanScheduler-capable algorithms (Peacock, GreedySLF) emit sparse
// DAGs that the controller dispatches ack-driven — each FlowMod
// issued the moment its dependencies' barriers arrive, so a slow
// switch stalls only its own dependents.
//
// Execution is also decentralizable: Plan.Partition slices the DAG
// into per-switch partitions that the controller broadcasts once
// (internal/planwire vendor messages); each switch's plan agent then
// installs nodes as in-edge acks arrive and acks its out-edges
// peer-to-peer over the fabric, so a dependency edge costs a
// sub-millisecond hop instead of two control RTTs. The partial order
// — and therefore the reachable ideal space, the verifier verdicts
// and the explorer fingerprints — is unchanged by who relays the
// acks (core.AssemblePlan, TestDecentralizedBitIdentical).
//
// Execution is also recoverable: netem.Faults injects seeded
// drop/duplicate/reorder faults per message class and switchsim
// crashes switches mid-plan (optionally wiping their tables). On a
// barrier timeout or stall the engine aborts, reverses the
// dispatched prefix (Plan.Reverse — the rollback's transient states
// are forward sub-ideals, so verified plans roll back safe),
// re-verifies the reverse plan, and executes it only on a safe
// verdict; otherwise the job reports itself stuck with the precise
// unmet dependencies. The structured failure report rides the /v1
// job status into the SDK and updatectl.
//
// The library lives under internal/:
//
//   - internal/core      — update model, schedulers (the paper's contribution),
//     and the plan layer: Plan/PlanFromSchedule/SparsePlan, the order-ideal
//     enumeration, PlanRun (allocation-free ack-dispatch bookkeeping), and
//     the canonical plan wire codec; core.Walker is the incremental,
//     allocation-free state-check primitive under the explorer and verifier
//   - internal/synth     — counterexample-guided plan synthesis (CEGIS): grows
//     a minimal-depth sparse DAG edge by edge from explorer/verifier
//     counterexample ideals, with budgets, a refinement transcript, a
//     heuristic portfolio fallback, and the optimality-gap report
//     (synth.Compare) quantifying how far each heuristic is from optimum
//   - internal/verify    — exact transient-state verification (fast safe/unsafe
//     verdicts) over round states and plan ideals (verify.Plan); the
//     PlanCounterexample entry returns the violating order ideal for the
//     synthesizer's refinement loop
//   - internal/explore   — adversarial interleaving explorer: exhaustive
//     Gray-code enumeration with incremental walks and a transposition
//     table, sampled FlowMod delivery orders, per-event checks, minimized
//     counterexample traces, parallel rounds with deterministic merge,
//     timed virtual-clock replay; explore.Plan ranges over a sparse plan's
//     ideals and linear extensions
//   - internal/simclock  — virtual time base: Clock interface, Sim discrete-event
//     scheduler with deterministic (time, seq) ordering and AutoAdvance
//   - internal/topo      — topologies, update families, the Figure 1 scenario
//   - internal/openflow  — OpenFlow 1.0-subset wire protocol
//   - internal/planwire  — vendor-message payloads for decentralized execution
//     (partition push, completion report, recovery state query/report)
//   - internal/ofconn    — framing, handshake, xid management
//   - internal/switchsim — simulated switches, data-plane fabric and the
//     decentralized plan agent (clock-parameterized); fault injection:
//     crash-after-N-FlowMods with optional table wipe, per-class
//     drop/duplicate/reorder; LoopGroup multiplexes fleet timers and
//     peer acks onto shared event loops for 100k-switch fleets
//   - internal/netem     — control-channel asynchrony models and the seeded
//     probabilistic fault model (netem.Faults) on a pluggable clock
//   - internal/controller— the controller: sharded ack-driven plan dispatch
//     (a fixed pool of event loops, goroutine- and allocation-free per
//     install, batched write-ahead journaling) with
//     per-node barriers (layered plans reproduce the paper's round loop) or
//     decentralized partition broadcast (ModeDecentralized),
//     REST API (/v1/verify and /v1/explore are the dry-run surfaces; jobs
//     report plan shape, per-install release edges, ctrl/peer message counts
//     and the structured failure report of the abort/rollback path);
//     with a journal configured, Engine.Recover replays job state after a
//     crash and adopts or rolls back mid-flight frontiers by reconciling
//     against live switch state
//   - internal/journal   — write-ahead job journal: CRC-framed record log
//     (admit/dispatched/confirmed/terminal), torn-tail-tolerant replay,
//     snapshot compaction — the durability base for crash-restart recovery
//   - internal/trace     — live probe/violation measurement (wall or virtual clock)
//   - internal/experiments — the experiment harness (E1..E10, E12..E15)
//
// See README.md for the package tour, quickstart, and the Performance
// section (incremental-walk design, Gray-code/order-state duality,
// memo-table memory bounds, and how to read the BENCH_*.json
// trajectory emitted by `make bench-json`). The benchmarks in
// bench_test.go regenerate every experiment table.
package tsu
