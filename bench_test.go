// Bench harness: one benchmark per experiment of EXPERIMENTS.md.
// Benchmarks report wall-clock per operation plus domain metrics
// (rounds, violations) via b.ReportMetric, so `go test -bench=.`
// regenerates the numbers behind every table. cmd/experiments prints
// the full tables.
package tsu_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/experiments"
	"tsu/internal/netem"
	"tsu/internal/openflow"
	"tsu/internal/topo"
	"tsu/internal/trace"
	"tsu/internal/verify"
)

// BenchmarkE1Fig1WayUp runs the paper's demo scenario per iteration:
// full WayUp update on the live Figure 1 testbed with probes; reports
// violations (always 0) and rounds.
func BenchmarkE1Fig1WayUp(b *testing.B) {
	violations, rounds := 0, 0
	for i := 0; i < b.N; i++ {
		bed, err := experiments.NewBed(topo.Fig1(), experiments.BedConfig{
			Jitter:  netem.Uniform{Min: 0, Max: 2 * time.Millisecond},
			Install: netem.Uniform{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond},
			Seed:    int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := bed.InstallOldPolicy(topo.Fig1OldPath); err != nil {
			bed.Close()
			b.Fatal(err)
		}
		in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
		sched, err := core.WayUp(in)
		if err != nil {
			bed.Close()
			b.Fatal(err)
		}
		prober := trace.NewProber(bed.Fabric, trace.Config{
			Ingress: 1, NWDst: experiments.FlowNWDst, Waypoint: topo.Fig1Waypoint,
			Interval: 100 * time.Microsecond,
		})
		stop := prober.Start(context.Background())
		if _, err := bed.RunUpdate(in, sched, 0); err != nil {
			stop()
			bed.Close()
			b.Fatal(err)
		}
		st := stop()
		violations += st.Violations()
		rounds = sched.NumRounds()
		bed.Close()
	}
	b.ReportMetric(float64(violations)/float64(b.N), "violations/op")
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE2UpdateTime measures the paper's stated metric — flow-table
// update time — per algorithm on the live Figure 1 testbed.
func BenchmarkE2UpdateTime(b *testing.B) {
	for _, algo := range []string{"oneshot", "peacock", "wayup", "greedy-slf"} {
		b.Run(algo, func(b *testing.B) {
			var totalRounds int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bed, err := experiments.NewBed(topo.Fig1(), experiments.BedConfig{
					Jitter:  netem.Uniform{Min: 0, Max: time.Millisecond},
					Install: netem.Fixed(time.Millisecond),
					Seed:    int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := bed.InstallOldPolicy(topo.Fig1OldPath); err != nil {
					bed.Close()
					b.Fatal(err)
				}
				in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
				sched, err := scheduleByName(in, algo)
				if err != nil {
					bed.Close()
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := bed.RunUpdate(in, sched, 0); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				totalRounds = sched.NumRounds()
				bed.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(totalRounds), "rounds")
		})
	}
}

func scheduleByName(in *core.Instance, algo string) (*core.Schedule, error) {
	switch algo {
	case "wayup":
		return core.WayUp(in)
	case "peacock":
		return core.Peacock(in)
	case "greedy-slf":
		return core.GreedySLF(in)
	default:
		return core.OneShot(in), nil
	}
}

// BenchmarkE3WaypointViolations verifies one-shot vs wayup on a random
// waypoint instance per iteration; reports the one-shot unsafe rate.
func BenchmarkE3WaypointViolations(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	props := core.NoBlackhole | core.WaypointEnforcement
	unsafe := 0
	for i := 0; i < b.N; i++ {
		ti := topo.RandomTwoPath(rng, 16, true)
		in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)
		if !verify.Schedule(in, core.OneShot(in), props, verify.Options{Budget: 1 << 16, Samples: 256}).OK() {
			unsafe++
		}
		w, err := core.WayUp(in)
		if err != nil {
			b.Fatal(err)
		}
		if !verify.Schedule(in, w, props, verify.Options{Budget: 1 << 16, Samples: 256}).OK() {
			b.Fatal("wayup produced an unsafe schedule")
		}
	}
	b.ReportMetric(float64(unsafe)/float64(b.N), "oneshot-unsafe/op")
}

// BenchmarkE4Rounds schedules the adversarial families; reports round
// counts (the log-vs-linear separation).
func BenchmarkE4Rounds(b *testing.B) {
	for _, n := range []int{64, 256} {
		ti := topo.Nested(n)
		in := core.MustInstance(ti.Old, ti.New, 0)
		b.Run("nested/peacock/n="+itoa(n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				s, err := core.Peacock(in)
				if err != nil {
					b.Fatal(err)
				}
				rounds = s.NumRounds()
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
		b.Run("nested/greedy-slf/n="+itoa(n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				s, err := core.GreedySLF(in)
				if err != nil {
					b.Fatal(err)
				}
				rounds = s.NumRounds()
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkE5SchedulerCompute measures pure scheduling cost.
func BenchmarkE5SchedulerCompute(b *testing.B) {
	for _, n := range []int{32, 256, 2048} {
		rng := rand.New(rand.NewSource(int64(n)))
		ti := topo.RandomTwoPath(rng, n, true)
		in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)
		b.Run("peacock/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Peacock(in); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("wayup/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.WayUp(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6UpdateTimeVsN measures the live update time as the
// topology grows.
func BenchmarkE6UpdateTimeVsN(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ti := topo.Reversal(n)
				bed, err := experiments.NewBed(ti.Graph, experiments.BedConfig{
					Jitter:  netem.Uniform{Min: 0, Max: time.Millisecond},
					Install: netem.Fixed(time.Millisecond),
					Seed:    int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := bed.InstallOldPolicy(ti.Old); err != nil {
					bed.Close()
					b.Fatal(err)
				}
				in := core.MustInstance(ti.Old, ti.New, 0)
				sched, err := core.Peacock(in)
				if err != nil {
					bed.Close()
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := bed.RunUpdate(in, sched, 0); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				bed.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkE7JitterDose runs one-shot updates under growing jitter and
// reports observed violations per run.
func BenchmarkE7JitterDose(b *testing.B) {
	for _, jitter := range []time.Duration{time.Millisecond, 4 * time.Millisecond} {
		b.Run("jitter="+jitter.String(), func(b *testing.B) {
			violations := 0
			for i := 0; i < b.N; i++ {
				bed, err := experiments.NewBed(topo.Fig1(), experiments.BedConfig{
					Jitter:  netem.Uniform{Min: 0, Max: jitter},
					Install: netem.Uniform{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond},
					Seed:    int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := bed.InstallOldPolicy(topo.Fig1OldPath); err != nil {
					bed.Close()
					b.Fatal(err)
				}
				in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
				prober := trace.NewProber(bed.Fabric, trace.Config{
					Ingress: 1, NWDst: experiments.FlowNWDst, Waypoint: topo.Fig1Waypoint,
					Interval: 50 * time.Microsecond,
				})
				stop := prober.Start(context.Background())
				if _, err := bed.RunUpdate(in, core.OneShot(in), 0); err != nil {
					stop()
					bed.Close()
					b.Fatal(err)
				}
				violations += stop().Violations()
				bed.Close()
			}
			b.ReportMetric(float64(violations)/float64(b.N), "violations/op")
		})
	}
}

// BenchmarkE8Codec measures the OpenFlow substrate: FlowMod
// encode/decode round trips (the per-update wire cost).
func BenchmarkE8Codec(b *testing.B) {
	fm := &openflow.FlowMod{
		Match:    openflow.ExactNWDst([]byte{10, 0, 0, 2}),
		Command:  openflow.FlowModify,
		Priority: 100,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: 3}},
	}
	fm.SetXid(1)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := openflow.Encode(fm); err != nil {
				b.Fatal(err)
			}
		}
	})
	wire, err := openflow.Encode(fm)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := openflow.Decode(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	br := &openflow.BarrierRequest{}
	br.SetXid(2)
	b.Run("barrier-roundtrip", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := openflow.Encode(br)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := openflow.Decode(w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9MultiPolicy schedules k concurrent policies jointly.
func BenchmarkE9MultiPolicy(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			joint := 0
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				instances := make([]*core.Instance, 0, k)
				for len(instances) < k {
					ti := topo.RandomTwoPath(rng, 24, false)
					in := core.MustInstance(ti.Old, ti.New, 0)
					if in.NumPending() == 0 {
						continue
					}
					instances = append(instances, in)
				}
				ju, err := core.NewJointUpdate(instances, core.Peacock)
				if err != nil {
					b.Fatal(err)
				}
				joint = ju.NumRounds()
			}
			b.ReportMetric(float64(joint), "rounds")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
