// Bench harness: one benchmark per experiment (see README.md for the
// experiment index). Benchmarks report wall-clock per operation plus
// domain metrics (rounds, violations) via b.ReportMetric, so
// `go test -bench=.` regenerates the numbers behind every table.
// cmd/experiments prints the full tables.
//
// BenchmarkWalkBitset and BenchmarkVerifyParallel additionally record
// the representation refactor: the dense-bitset state core and the
// parallel verification engine against map-based, single-threaded
// reference implementations matching the seed.
package tsu_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/experiments"
	"tsu/internal/netem"
	"tsu/internal/openflow"
	"tsu/internal/synth"
	"tsu/internal/topo"
	"tsu/internal/trace"
	"tsu/internal/verify"
)

// runEngineUpdate drives the update through the engine directly (no
// HTTP): the timed benchmark regions measure barrier-confirmed update
// execution alone, keeping the numbers comparable across revisions —
// API-transport overhead is not part of the paper's metric.
func runEngineUpdate(bed *experiments.Bed, in *core.Instance, sched *core.Schedule) error {
	job, err := bed.Ctrl.Engine().Submit(in, sched, experiments.Match(), 0)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	return job.Wait(ctx)
}

// BenchmarkE1Fig1WayUp runs the paper's demo scenario per iteration:
// full WayUp update on the live Figure 1 testbed with probes; reports
// violations (always 0) and rounds.
func BenchmarkE1Fig1WayUp(b *testing.B) {
	violations, rounds := 0, 0
	for i := 0; i < b.N; i++ {
		bed, err := experiments.NewBed(topo.Fig1(), experiments.BedConfig{
			Jitter:  netem.Uniform{Min: 0, Max: 2 * time.Millisecond},
			Install: netem.Uniform{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond},
			Seed:    int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := bed.InstallOldPolicy(topo.Fig1OldPath); err != nil {
			bed.Close()
			b.Fatal(err)
		}
		in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
		sched, err := core.WayUp(in)
		if err != nil {
			bed.Close()
			b.Fatal(err)
		}
		prober := trace.NewProber(bed.Fabric, trace.Config{
			Ingress: 1, NWDst: experiments.FlowNWDst, Waypoint: topo.Fig1Waypoint,
			Interval: 100 * time.Microsecond,
		})
		stop := prober.Start(context.Background())
		if err := runEngineUpdate(bed, in, sched); err != nil {
			stop()
			bed.Close()
			b.Fatal(err)
		}
		st := stop()
		violations += st.Violations()
		rounds = sched.NumRounds()
		bed.Close()
	}
	b.ReportMetric(float64(violations)/float64(b.N), "violations/op")
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE2UpdateTime measures the paper's stated metric — flow-table
// update time — per algorithm on the live Figure 1 testbed.
func BenchmarkE2UpdateTime(b *testing.B) {
	for _, algo := range []string{core.AlgoOneShot, core.AlgoPeacock, core.AlgoWayUp, core.AlgoGreedySLF} {
		b.Run(algo, func(b *testing.B) {
			var totalRounds int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bed, err := experiments.NewBed(topo.Fig1(), experiments.BedConfig{
					Jitter:  netem.Uniform{Min: 0, Max: time.Millisecond},
					Install: netem.Fixed(time.Millisecond),
					Seed:    int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := bed.InstallOldPolicy(topo.Fig1OldPath); err != nil {
					bed.Close()
					b.Fatal(err)
				}
				in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
				sched, err := scheduleByName(in, algo)
				if err != nil {
					bed.Close()
					b.Fatal(err)
				}
				b.StartTimer()
				if err := runEngineUpdate(bed, in, sched); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				totalRounds = sched.NumRounds()
				bed.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(totalRounds), "rounds")
		})
	}
}

func scheduleByName(in *core.Instance, algo string) (*core.Schedule, error) {
	return core.ScheduleByName(in, algo, 0)
}

// BenchmarkE3WaypointViolations verifies one-shot vs wayup on a random
// waypoint instance per iteration; reports the one-shot unsafe rate.
func BenchmarkE3WaypointViolations(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	props := core.NoBlackhole | core.WaypointEnforcement
	unsafe := 0
	for i := 0; i < b.N; i++ {
		ti := topo.RandomTwoPath(rng, 16, true)
		in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)
		if !verify.Schedule(in, core.OneShot(in), props, verify.Options{Budget: 1 << 16, Samples: 256}).OK() {
			unsafe++
		}
		w, err := core.WayUp(in)
		if err != nil {
			b.Fatal(err)
		}
		if !verify.Schedule(in, w, props, verify.Options{Budget: 1 << 16, Samples: 256}).OK() {
			b.Fatal("wayup produced an unsafe schedule")
		}
	}
	b.ReportMetric(float64(unsafe)/float64(b.N), "oneshot-unsafe/op")
}

// BenchmarkE4Rounds schedules the adversarial families; reports round
// counts (the log-vs-linear separation).
func BenchmarkE4Rounds(b *testing.B) {
	for _, n := range []int{64, 256} {
		ti := topo.Nested(n)
		in := core.MustInstance(ti.Old, ti.New, 0)
		b.Run("nested/peacock/n="+itoa(n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				s, err := core.Peacock(in)
				if err != nil {
					b.Fatal(err)
				}
				rounds = s.NumRounds()
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
		b.Run("nested/greedy-slf/n="+itoa(n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				s, err := core.GreedySLF(in)
				if err != nil {
					b.Fatal(err)
				}
				rounds = s.NumRounds()
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkE5SchedulerCompute measures pure scheduling cost.
func BenchmarkE5SchedulerCompute(b *testing.B) {
	for _, n := range []int{32, 256, 2048} {
		rng := rand.New(rand.NewSource(int64(n)))
		ti := topo.RandomTwoPath(rng, n, true)
		in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)
		b.Run("peacock/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Peacock(in); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("wayup/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.WayUp(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6UpdateTimeVsN measures the live update time as the
// topology grows.
func BenchmarkE6UpdateTimeVsN(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ti := topo.Reversal(n)
				bed, err := experiments.NewBed(ti.Graph, experiments.BedConfig{
					Jitter:  netem.Uniform{Min: 0, Max: time.Millisecond},
					Install: netem.Fixed(time.Millisecond),
					Seed:    int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := bed.InstallOldPolicy(ti.Old); err != nil {
					bed.Close()
					b.Fatal(err)
				}
				in := core.MustInstance(ti.Old, ti.New, 0)
				sched, err := core.Peacock(in)
				if err != nil {
					bed.Close()
					b.Fatal(err)
				}
				b.StartTimer()
				if err := runEngineUpdate(bed, in, sched); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				bed.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkE7JitterDose runs one-shot updates under growing jitter and
// reports observed violations per run.
func BenchmarkE7JitterDose(b *testing.B) {
	for _, jitter := range []time.Duration{time.Millisecond, 4 * time.Millisecond} {
		b.Run("jitter="+jitter.String(), func(b *testing.B) {
			violations := 0
			for i := 0; i < b.N; i++ {
				bed, err := experiments.NewBed(topo.Fig1(), experiments.BedConfig{
					Jitter:  netem.Uniform{Min: 0, Max: jitter},
					Install: netem.Uniform{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond},
					Seed:    int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := bed.InstallOldPolicy(topo.Fig1OldPath); err != nil {
					bed.Close()
					b.Fatal(err)
				}
				in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
				prober := trace.NewProber(bed.Fabric, trace.Config{
					Ingress: 1, NWDst: experiments.FlowNWDst, Waypoint: topo.Fig1Waypoint,
					Interval: 50 * time.Microsecond,
				})
				stop := prober.Start(context.Background())
				if err := runEngineUpdate(bed, in, core.OneShot(in)); err != nil {
					stop()
					bed.Close()
					b.Fatal(err)
				}
				violations += stop().Violations()
				bed.Close()
			}
			b.ReportMetric(float64(violations)/float64(b.N), "violations/op")
		})
	}
}

// BenchmarkE8Codec measures the OpenFlow substrate: FlowMod
// encode/decode round trips (the per-update wire cost).
func BenchmarkE8Codec(b *testing.B) {
	fm := &openflow.FlowMod{
		Match:    openflow.ExactNWDst([]byte{10, 0, 0, 2}),
		Command:  openflow.FlowModify,
		Priority: 100,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: 3}},
	}
	fm.SetXid(1)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := openflow.Encode(fm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-pooled", func(b *testing.B) {
		// The live deployment path: AppendTo into a cycled buffer
		// (ofconn's wire pool) — zero allocations in steady state.
		b.ReportAllocs()
		buf := make([]byte, 0, 256)
		for i := 0; i < b.N; i++ {
			var err error
			if buf, err = openflow.AppendTo(buf[:0], fm); err != nil {
				b.Fatal(err)
			}
		}
	})
	wire, err := openflow.Encode(fm)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := openflow.Decode(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	br := &openflow.BarrierRequest{}
	br.SetXid(2)
	b.Run("barrier-roundtrip", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := openflow.Encode(br)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := openflow.Decode(w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9MultiPolicy schedules k concurrent policies jointly.
func BenchmarkE9MultiPolicy(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			joint := 0
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				instances := make([]*core.Instance, 0, k)
				for len(instances) < k {
					ti := topo.RandomTwoPath(rng, 24, false)
					in := core.MustInstance(ti.Old, ti.New, 0)
					if in.NumPending() == 0 {
						continue
					}
					instances = append(instances, in)
				}
				ju, err := core.NewJointUpdate(instances, core.MustScheduler(core.AlgoPeacock), 0)
				if err != nil {
					b.Fatal(err)
				}
				joint = ju.NumRounds()
			}
			b.ReportMetric(float64(joint), "rounds")
		})
	}
}

// BenchmarkE10VirtualFatTree runs the 10k-switch fat-tree update
// scenario (200 random reroutes, peacock vs one-shot, per-event
// transient-security checks) entirely under the virtual clock. The
// acceptance bar is < 5s wall-clock per run with a reproducible event
// count — the scale the discrete-event simulator unlocks over the TCP
// testbed.
func BenchmarkE10VirtualFatTree(b *testing.B) {
	events := 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.E10VirtualFatTree(90, 200, 17)
		if err != nil {
			b.Fatal(err)
		}
		if events != 0 && events != res.Events {
			b.Fatalf("event count not reproducible: %d vs %d", events, res.Events)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events")
}

// BenchmarkE13FaultedRollback runs the 10k-switch fat-tree fault
// scenario (200 random reroutes under seeded confirmation-loss rates,
// verified rollback of every aborted prefix) with four workers. The
// acceptance bar is a reproducible event count, zero verifier
// refusals, and a nonzero abort/rollback stream — recovery exercised
// at the scale the virtual clock unlocks.
func BenchmarkE13FaultedRollback(b *testing.B) {
	events, rolledBack := 0, 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.E13FaultedRollback(90, 200, 17, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 {
			b.Fatalf("verifier refused %d rollbacks", res.Violations)
		}
		if events != 0 && events != res.Events {
			b.Fatalf("event count not reproducible: %d vs %d", events, res.Events)
		}
		events, rolledBack = res.Events, res.RolledBack
	}
	b.ReportMetric(float64(events), "events")
	b.ReportMetric(float64(rolledBack), "rolled_back")
}

// BenchmarkE14CrashRecovery runs the 2000-switch crash-boundary sweep
// (100 random reroutes, each killed at every dispatch boundary under
// seeded switch-wipe rates, recovered by journal replay) with four
// workers. The acceptance bar is a reproducible event count, zero
// verifier refusals, and both recovery modes exercised: mid-flight
// frontiers adopted and non-adoptable state rolled back verified.
func BenchmarkE14CrashRecovery(b *testing.B) {
	events, adopted, rolledBack := 0, 0, 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.E14CrashRecovery(40, 100, 17, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 {
			b.Fatalf("verifier refused %d recovery rollbacks", res.Violations)
		}
		if res.Adopted == 0 || res.RolledBack == 0 {
			b.Fatalf("sweep missed a recovery mode: %+v", res)
		}
		if events != 0 && events != res.Events {
			b.Fatalf("event count not reproducible: %d vs %d", events, res.Events)
		}
		events, adopted, rolledBack = res.Events, res.Adopted, res.RolledBack
	}
	b.ReportMetric(float64(events), "events")
	b.ReportMetric(float64(adopted), "adopted")
	b.ReportMetric(float64(rolledBack), "rolled_back")
}

// BenchmarkE15Soak is the 100k-switch soak tier: 100 random reroutes
// on FatTree(284) — 100,820 switches — each replayed through the
// decentralized sharded-dispatch model on virtual time under the E13
// confirmation-loss model, with surviving runs swept across E14-style
// crash boundaries placed at the batched write-ahead records (one
// grouped dispatched-delta per release wave). The acceptance bar is a
// run that completes with zero verifier refusals, bit-reproducible
// counters, both crash-recovery modes exercised, and write-ahead
// batches that group more than one node per append (the journal
// compaction pressure relief; the per-append cost is
// BenchmarkJournalCompaction's number).
func BenchmarkE15Soak(b *testing.B) {
	events, peerAcks := 0, 0
	var batchWidth float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E15Soak(0, 0, 17, 8)
		if err != nil {
			b.Fatal(err)
		}
		if res.Switches < 100000 {
			b.Fatalf("soak tier ran on %d switches, want >= 100000", res.Switches)
		}
		if res.Violations != 0 {
			b.Fatalf("verifier refused %d rollbacks", res.Violations)
		}
		if res.Adopted == 0 || res.CrashRolledBack == 0 || res.Aborts == 0 {
			b.Fatalf("soak missed a stress mode: %+v", res)
		}
		if res.JournalNodes <= res.JournalRecords {
			b.Fatalf("write-ahead batching not observed: %d records for %d nodes",
				res.JournalRecords, res.JournalNodes)
		}
		if events != 0 && events != res.Events {
			b.Fatalf("event count not reproducible: %d vs %d", events, res.Events)
		}
		events, peerAcks = res.Events, res.PeerAcks
		batchWidth = float64(res.JournalNodes) / float64(res.JournalRecords)
	}
	b.ReportMetric(float64(events), "events")
	b.ReportMetric(float64(peerAcks), "peer_acks")
	b.ReportMetric(batchWidth, "journal_batch_width")
}

// BenchmarkWalkBitset measures the forwarding walk on the dense bitset
// state core against an equivalent map-based walker (the seed's State
// representation), with half the pending switches flipped. The bitset
// walk is the primitive under every scheduler and the verifier, so this
// ratio is the refactor's headline number.
func BenchmarkWalkBitset(b *testing.B) {
	for _, n := range []int{64, 512} {
		ti := topo.Reversal(n)
		in := core.MustInstance(ti.Old, ti.New, 0)
		pending := in.Pending()
		half := pending[:len(pending)/2]
		st := in.StateOf(half...)
		mapSt := make(map[topo.NodeID]bool, len(half))
		for _, v := range half {
			mapSt[v] = true
		}
		b.Run("bitset/n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in.Walk(st)
			}
		})
		b.Run("map/n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mapWalk(in, mapSt)
			}
		})
	}
}

// BenchmarkVerifyParallel pits the parallel bitset verification engine
// against a single-threaded map-based reference verifier (the seed's
// representation and threading model) on a batch of random 8-pod
// fat-tree policies. This PR's acceptance bar is >= 3x throughput for
// bitset-parallel over map-serial.
func BenchmarkVerifyParallel(b *testing.B) {
	g := topo.FatTree(8)
	rng := rand.New(rand.NewSource(88))
	const flows = 256
	props := core.NoBlackhole | core.RelaxedLoopFreedom | core.StrongLoopFreedom
	var tasks []verify.Task
	for len(tasks) < flows {
		ti, err := topo.RandomFatTreePolicy(rng, g)
		if err != nil {
			b.Fatal(err)
		}
		in := core.MustInstance(ti.Old, ti.New, 0)
		if in.NumPending() == 0 {
			continue
		}
		sched, err := scheduleByName(in, core.AlgoGreedySLF)
		if err != nil {
			b.Fatal(err)
		}
		tasks = append(tasks, verify.Task{Instance: in, Schedule: sched, Props: props})
	}
	b.Run("bitset-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range verify.Batch(tasks, verify.Options{}) {
				if !r.OK() {
					b.Fatal(r)
				}
			}
		}
	})
	b.Run("bitset-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range verify.Batch(tasks, verify.Options{Workers: 1}) {
				if !r.OK() {
					b.Fatal(r)
				}
			}
		}
	})
	b.Run("map-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, task := range tasks {
				ok, exact := mapVerify(task.Instance, task.Schedule, task.Props)
				if !exact {
					b.Fatal("map verifier exhausted its budget; comparison would not be work-equivalent")
				}
				if !ok {
					b.Fatal("map verifier rejected a safe schedule")
				}
			}
		}
	})
}

// mapWalk is the seed's forwarding walk: map-based updated-set and
// visited-set. Kept as the baseline BenchmarkWalkBitset compares
// against.
func mapWalk(in *core.Instance, upd map[topo.NodeID]bool) (topo.Path, core.Outcome) {
	var path topo.Path
	seen := make(map[topo.NodeID]bool)
	v := in.Src()
	for {
		path = append(path, v)
		if v == in.Dst() {
			return path, core.Reached
		}
		if seen[v] {
			return path, core.Looped
		}
		seen[v] = true
		next, ok := in.NextHop(v, func(n topo.NodeID) bool { return upd[n] })
		if !ok {
			return path, core.Dropped
		}
		v = next
	}
}

// mapVerify is the seed's verifier: per round, the branching subset
// search over map-based states, single-threaded. It reports whether the
// schedule is transiently consistent for props and ends in the new
// path; exact=false means the budget ran out before the subset search
// completed (the real engine would fall back to sampling there, so the
// benchmark refuses the comparison). Baseline for
// BenchmarkVerifyParallel.
func mapVerify(in *core.Instance, s *core.Schedule, props core.Property) (ok, exact bool) {
	done := make(map[topo.NodeID]bool)
	for _, round := range s.Rounds {
		if props.Has(core.StrongLoopFreedom) && !mapRoundSafeStrongLF(in, done, round) {
			return false, true
		}
		c := &mapChecker{
			in:       in,
			done:     done,
			inRound:  make(map[topo.NodeID]bool, len(round)),
			props:    props &^ core.StrongLoopFreedom,
			budget:   1 << 20,
			assigned: make(map[topo.NodeID]bool),
			onWalk:   make(map[topo.NodeID]bool),
		}
		for _, v := range round {
			if in.NeedsUpdate(v) && !done[v] {
				c.inRound[v] = true
			}
		}
		if c.step(in.Src()) {
			return false, true
		}
		if c.budget < 0 {
			return true, false
		}
		for _, v := range round {
			done[v] = true
		}
	}
	path, outcome := mapWalk(in, done)
	return outcome == core.Reached && path.Equal(in.New), true
}

type mapChecker struct {
	in       *core.Instance
	done     map[topo.NodeID]bool
	inRound  map[topo.NodeID]bool
	props    core.Property
	budget   int
	assigned map[topo.NodeID]bool
	onWalk   map[topo.NodeID]bool
}

func (c *mapChecker) updated(v topo.NodeID) bool {
	if c.done[v] {
		return true
	}
	set, ok := c.assigned[v]
	return ok && set
}

// step returns true when some subset of the round violates a property.
func (c *mapChecker) step(v topo.NodeID) bool {
	c.budget--
	if c.budget < 0 {
		return false
	}
	if v == c.in.Dst() {
		return c.props.Has(core.WaypointEnforcement) && c.in.Waypoint != 0 && !c.onWalk[c.in.Waypoint]
	}
	if c.onWalk[v] {
		return c.props.Has(core.RelaxedLoopFreedom)
	}
	c.onWalk[v] = true
	defer delete(c.onWalk, v)
	if c.inRound[v] {
		if _, fixed := c.assigned[v]; !fixed {
			for _, set := range []bool{true, false} {
				c.assigned[v] = set
				if c.advance(v) {
					return true
				}
			}
			delete(c.assigned, v)
			return false
		}
	}
	return c.advance(v)
}

func (c *mapChecker) advance(v topo.NodeID) bool {
	next, ok := c.in.NextHop(v, c.updated)
	if !ok {
		return c.props.Has(core.NoBlackhole)
	}
	return c.step(next)
}

// mapRoundSafeStrongLF is the seed's polynomial double-edge test over
// map-based colors: every subset of round on top of done keeps the rule
// graph acyclic iff the graph with both edges at in-flight switches is
// acyclic.
func mapRoundSafeStrongLF(in *core.Instance, done map[topo.NodeID]bool, round []topo.NodeID) bool {
	inRound := make(map[topo.NodeID]bool, len(round))
	for _, v := range round {
		inRound[v] = true
	}
	edges := func(v topo.NodeID) []topo.NodeID {
		if v == in.Dst() {
			return nil
		}
		var out []topo.NodeID
		if !in.NeedsUpdate(v) {
			if n, ok := in.NextHop(v, nil); ok {
				out = append(out, n)
			}
			return out
		}
		newSucc, _ := in.NewSucc(v)
		if done[v] {
			return append(out, newSucc)
		}
		if inRound[v] {
			out = append(out, newSucc)
		}
		if n, ok := in.OldSucc(v); ok {
			out = append(out, n)
		}
		return out
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[topo.NodeID]int)
	var visit func(v topo.NodeID) bool
	visit = func(v topo.NodeID) bool {
		color[v] = grey
		for _, n := range edges(v) {
			switch color[n] {
			case grey:
				return true
			case white:
				if visit(n) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for _, v := range in.Nodes() {
		if color[v] == white && visit(v) {
			return false
		}
	}
	return true
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkSynthFig1 measures full counterexample-guided synthesis on
// the paper's Figure 1 instance (portfolio included), then reports the
// worst optimality gap any registered heuristic leaves against the
// synthesized plan — the headline number of the gap report.
func BenchmarkSynthFig1(b *testing.B) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	var plan *core.Plan
	var tr *synth.Transcript
	for i := 0; i < b.N; i++ {
		p, t, err := synth.Plan(in, 0, synth.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		plan, tr = p, t
	}
	b.StopTimer()
	b.ReportMetric(float64(plan.Depth()), "depth")
	b.ReportMetric(float64(tr.Iters), "refinements")
	reportWorstGap(b, in)
}

// BenchmarkSynthComb does the same on Comb(12,8) — 108 pending
// switches, the largest instance of the gap report, where the oracle
// runs sampled rather than exhaustive.
func BenchmarkSynthComb(b *testing.B) {
	ti := topo.Comb(12, 8)
	in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)
	var plan *core.Plan
	var tr *synth.Transcript
	for i := 0; i < b.N; i++ {
		p, t, err := synth.Plan(in, 0, synth.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		plan, tr = p, t
	}
	b.StopTimer()
	b.ReportMetric(float64(plan.Depth()), "depth")
	b.ReportMetric(float64(tr.Iters), "refinements")
	reportWorstGap(b, in)
}

// reportWorstGap runs the gap report (outside the timed region) and
// records the largest per-heuristic depth and edge gaps.
func reportWorstGap(b *testing.B, in *core.Instance) {
	b.Helper()
	rep, err := synth.Compare(in, synth.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	depthGap, edgeGap := 0, 0
	for _, row := range rep.Rows {
		depthGap = max(depthGap, row.DepthGap)
		edgeGap = max(edgeGap, row.EdgeGap)
	}
	b.ReportMetric(float64(depthGap), "max-depth-gap")
	b.ReportMetric(float64(edgeGap), "max-edge-gap")
}
