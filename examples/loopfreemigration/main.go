// Loopfreemigration shows why relaxing loop freedom pays: on the
// nested route-migration family, strong loop freedom is forced through
// a linear chain of dependent rounds while Peacock's relaxed notion
// finishes in three — and then executes the Peacock schedule live over
// TCP, measuring per-round barrier times.
//
//	go run ./examples/loopfreemigration
package main

import (
	"fmt"
	"log"
	"time"

	"tsu/internal/core"
	"tsu/internal/experiments"
	"tsu/internal/metrics"
	"tsu/internal/netem"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

func main() {
	fmt.Println("rounds needed: relaxed (Peacock) vs strong (greedy) loop freedom")
	tbl := metrics.NewTable("n", core.AlgoPeacock, core.AlgoGreedySLF)
	for _, n := range []int{10, 22, 46, 94, 190} {
		ti := topo.Nested(n)
		in := core.MustInstance(ti.Old, ti.New, 0)
		p, err := core.ScheduleByName(in, core.AlgoPeacock, 0)
		if err != nil {
			log.Fatal(err)
		}
		g, err := core.ScheduleByName(in, core.AlgoGreedySLF, 0)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(n, p.NumRounds(), g.NumRounds())
	}
	fmt.Println(tbl)

	// Execute the n=22 migration live.
	ti := topo.Nested(22)
	in := core.MustInstance(ti.Old, ti.New, 0)
	sched, err := core.ScheduleByName(in, core.AlgoPeacock, 0)
	if err != nil {
		log.Fatal(err)
	}
	if rep := verify.Guarantees(in, sched, verify.Options{}); !rep.OK() {
		log.Fatalf("schedule failed verification: %v", rep)
	}

	bed, err := experiments.NewBed(ti.Graph, experiments.BedConfig{
		Jitter:  netem.Uniform{Min: 0, Max: time.Millisecond},
		Install: netem.Fixed(time.Millisecond),
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer bed.Close()
	if err := bed.InstallOldPolicy(ti.Old); err != nil {
		log.Fatal(err)
	}
	job, err := bed.RunUpdateAlgorithm(in, sched.Algorithm, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live migration of %d switches (n=22) with %s:\n", in.NumPending(), sched.Algorithm)
	for _, rt := range job.Rounds {
		fmt.Printf("  round %d: %2d switches in %v\n", rt.Round, len(rt.Switches), rt.Duration().Round(10*time.Microsecond))
	}
	fmt.Printf("  total: %v\n", job.TotalDuration().Round(10*time.Microsecond))
}
