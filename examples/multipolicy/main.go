// Multipolicy updates several routing policies together — the paper's
// pointer to "more work on multiple policies" (DSN'16, SIGMETRICS'16).
// Flows are independent on the wire (distinct destination addresses),
// so each keeps its scheduler's transient guarantee; what the joint
// treatment buys is round economy: rounds execute in a common barrier
// cadence and per-switch FlowMods batch together.
//
//	go run ./examples/multipolicy
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tsu/internal/core"
	"tsu/internal/metrics"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

func main() {
	rng := rand.New(rand.NewSource(2016))
	const flows = 4
	instances := make([]*core.Instance, 0, flows)
	for len(instances) < flows {
		ti := topo.RandomTwoPath(rng, 16, false)
		in := core.MustInstance(ti.Old, ti.New, 0)
		if in.NumPending() == 0 {
			continue
		}
		instances = append(instances, in)
	}

	joint, err := core.NewJointUpdate(instances, core.MustScheduler(core.AlgoPeacock), 0)
	if err != nil {
		log.Fatal(err)
	}

	for f, in := range joint.Instances {
		s := joint.Schedules[f]
		fmt.Printf("flow %d (10.0.%d.2): %d pending switches, %d rounds — %v\n",
			f, f, in.NumPending(), s.NumRounds(), s.Rounds)
		if rep := verify.Guarantees(in, s, verify.Options{}); !rep.OK() {
			log.Fatalf("flow %d failed verification: %v", f, rep)
		}
	}

	fmt.Printf("\njoint rounds: %d (sequential execution would need %d)\n",
		joint.NumRounds(), joint.SequentialRounds())
	fmt.Printf("total FlowMods: %d\n\n", joint.TotalFlowMods())

	fmt.Println("per-round switch batching (switch ← flows updating it):")
	for i := 0; i < joint.NumRounds(); i++ {
		round := joint.Round(i)
		fmt.Printf("  round %d: %d switches touched\n", i, len(round))
	}

	fmt.Println("\nbusiest switches (rounds in which each receives FlowMods):")
	tbl := metrics.NewTable("switch", "touches")
	for i, tc := range joint.TouchSummary() {
		if i >= 5 {
			break
		}
		tbl.AddRow(tc.Switch, tc.Touches)
	}
	fmt.Println(tbl)
}
