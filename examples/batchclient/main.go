// Batchclient demonstrates the /v1 API surface end to end through the
// typed client SDK: a controller and a 16-switch grid fabric come up
// in process, two disjoint flows are dry-run verified, submitted as
// one batch, and watched as Server-Sent-Event streams while the
// conflict-aware engine executes them concurrently. Flow A executes
// decentralized — the switches release each other peer-to-peer from
// one broadcast partition each — while flow B stays controller-driven,
// and the final job statuses show the message-count difference.
//
//	go run ./examples/batchclient
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"tsu/internal/api"
	"tsu/internal/experiments"
	"tsu/internal/netem"
	"tsu/internal/topo"
)

func main() {
	// Grid rows: 1-4 / 5-8 / 9-12 / 13-16. Flow A rides rows 1-2,
	// flow B rows 3-4 — disjoint switch sets, so the engine overlaps
	// their rounds. Flow A runs its sparse plan decentralized: two
	// control messages per switch, dependency acks switch-to-switch.
	flowA := api.FlowUpdate{
		OldPath: []uint64{1, 2, 3, 4}, NewPath: []uint64{1, 5, 6, 7, 8, 4},
		NWDst: "10.0.0.2", Algorithm: "peacock", Plan: "sparse", Mode: "decentralized",
	}
	flowB := api.FlowUpdate{
		OldPath: []uint64{9, 10, 11, 12}, NewPath: []uint64{9, 13, 14, 15, 16, 12},
		NWDst: "10.0.0.9", Algorithm: "peacock",
	}

	bed, err := experiments.NewBed(topo.Grid(4, 4), experiments.BedConfig{
		Install: netem.Fixed(2 * time.Millisecond),
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer bed.Close()
	c := bed.Client
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Old policies first, through the API.
	for _, f := range []api.FlowUpdate{flowA, flowB} {
		if err := c.InstallPolicy(ctx, api.PolicyRequest{Path: f.OldPath, NWDst: f.NWDst}); err != nil {
			log.Fatal(err)
		}
	}

	// Dry-run verification: schedules plus transient guarantees, no
	// switch touched.
	vr, err := c.Verify(ctx, api.VerifyRequest{
		Updates:    []api.FlowUpdate{flowA, flowB},
		Properties: []string{"no-blackhole", "relaxed-lf"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range vr.Results {
		fmt.Printf("flow %d: %s over %d rounds, %s: ok=%v (exact=%v)\n",
			i, res.Algorithm, len(res.Rounds), res.Properties, res.OK, res.Exact)
	}

	// The batch proper.
	resp, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{Updates: []api.FlowUpdate{flowA, flowB}})
	if err != nil {
		log.Fatal(err)
	}

	// Watch both jobs' SSE streams while they overlap.
	var wg sync.WaitGroup
	for _, acc := range resp.Updates {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			events, err := c.Watch(ctx, id)
			if err != nil {
				log.Printf("watch %d: %v", id, err)
				return
			}
			for ev := range events {
				switch ev.Type {
				case api.EventRound:
					fmt.Printf("job %d round %d: %d switches in %v\n",
						id, ev.Round.Round, len(ev.Round.Switches), ev.Round.Duration())
				case api.EventDone:
					fmt.Printf("job %d done in %v\n", id, time.Duration(ev.TotalMicros)*time.Microsecond)
				case api.EventFailed:
					fmt.Printf("job %d FAILED: %s\n", id, ev.Error)
				}
			}
		}(acc.ID)
	}
	wg.Wait()

	// Message-count breakdown: flow A's decentralized job exchanged
	// exactly two control messages per switch and pushed the dependency
	// traffic into the fabric; flow B paid the control channel per
	// install.
	for _, acc := range resp.Updates {
		st, err := c.Job(ctx, acc.ID)
		if err != nil {
			log.Fatal(err)
		}
		mode := st.Mode
		if mode == "" {
			mode = "controller"
		}
		if st.Messages != nil {
			fmt.Printf("job %d (%s): ctrl=%d peer=%d messages\n",
				st.ID, mode, st.Messages.Ctrl, st.Messages.Peer)
		}
	}

	h, err := c.Healthz(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthz: %d switches, queue depth %d, %d workers\n", h.Switches, h.QueueDepth, h.Workers)
}
