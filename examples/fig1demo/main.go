// Fig1demo reproduces the paper's demo end to end, in process: the
// twelve-switch Figure 1 topology, a controller and a switch fleet
// talking OpenFlow over loopback TCP with a jittery control channel,
// probe traffic from h1 toward h2 throughout, and the WayUp update
// executed in barrier-delimited rounds — then the same update as a
// one-shot, to show what the rounds are protecting against.
//
//	go run ./examples/fig1demo
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tsu/internal/core"
	"tsu/internal/experiments"
	"tsu/internal/netem"
	"tsu/internal/topo"
	"tsu/internal/trace"
)

func main() {
	fmt.Println("Figure 1: twelve switches, h1@s1, h2@s12, waypoint s3")
	fmt.Printf("  old route (solid):  %v\n", topo.Fig1OldPath)
	fmt.Printf("  new route (dashed): %v\n\n", topo.Fig1NewPath)

	for _, algo := range []string{core.AlgoWayUp, "two-phase", core.AlgoOneShot} {
		if err := runOnce(algo); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func runOnce(algo string) error {
	bed, err := experiments.NewBed(topo.Fig1(), experiments.BedConfig{
		Jitter:  netem.Uniform{Min: 0, Max: 3 * time.Millisecond},
		Install: netem.Uniform{Min: 500 * time.Microsecond, Max: 3 * time.Millisecond},
		Seed:    42,
	})
	if err != nil {
		return err
	}
	defer bed.Close()
	if err := bed.InstallOldPolicy(topo.Fig1OldPath); err != nil {
		return err
	}

	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)

	prober := trace.NewProber(bed.Fabric, trace.Config{
		Ingress:  1,
		NWDst:    experiments.FlowNWDst,
		Waypoint: topo.Fig1Waypoint,
		Interval: 50 * time.Microsecond,
	})
	stop := prober.Start(context.Background())

	// Everything flows through the /v1 API client, two-phase included
	// (the tagging fallback: per-packet consistency via a prepare round
	// of VLAN-tagged rules and an atomic ingress flip).
	if algo == "two-phase" {
		fmt.Printf("%s: prepare tagged rules, commit ingress\n", algo)
	} else {
		var sched *core.Schedule
		sched, err = core.ScheduleByName(in, algo, 0)
		if err != nil {
			stop()
			return err
		}
		fmt.Printf("%s: %d round(s)\n", algo, sched.NumRounds())
	}
	job, err := bed.RunUpdateAlgorithm(in, algo, 0)
	if err != nil {
		stop()
		return err
	}
	stats := stop()

	for _, rt := range job.Rounds {
		fmt.Printf("  round %d: switches %v, %v (FlowMods sent, barriers confirmed)\n",
			rt.Round, rt.Switches, rt.Duration().Round(10*time.Microsecond))
	}
	fmt.Printf("  total update time: %v\n", job.TotalDuration().Round(10*time.Microsecond))
	fmt.Printf("  probes during update: %d sent, %d delivered, %d waypoint bypasses, %d loops, %d drops\n",
		stats.Sent, stats.Delivered, stats.Bypasses, stats.Loops, stats.Drops)
	if stats.Violations() == 0 {
		fmt.Println("  transiently secure: every delivered probe crossed the firewall")
	} else if stats.FirstViolation != nil {
		fmt.Printf("  VIOLATION, e.g. probe path %v (%s)\n",
			stats.FirstViolation.Visited, stats.FirstViolation.Outcome)
	}

	final := bed.Fabric.Inject(1, experiments.FlowNWDst, 64)
	fmt.Printf("  final forwarding path: %v (%s)\n", final.Visited, final.Outcome)
	return nil
}
