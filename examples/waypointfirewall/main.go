// Waypointfirewall walks through the security story: a tenant's
// traffic must traverse a firewall at every instant, including while
// routes are being reconfigured. The example builds an update whose
// naive execution can bypass the firewall, exhibits a concrete
// violating interleaving found by the exact verifier, and then shows
// the WayUp schedule with its phase structure (and when waypoint
// enforcement and loop freedom conflict, how WayUp degrades).
//
//	go run ./examples/waypointfirewall
package main

import (
	"fmt"
	"log"

	"tsu/internal/core"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

func main() {
	// Old route: s1 → s2 → s4(FW) → s6 → s8.
	// New route: s1 → s3 → s4(FW) → s5 → s7 → s8.
	// The firewall s4 stays on both routes; everything else changes.
	const firewall = 4
	in, err := core.NewInstance(
		topo.Path{1, 2, 4, 6, 8},
		topo.Path{1, 3, 4, 5, 7, 8},
		firewall,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy change: %v\n", in)
	fmt.Printf("switches needing updates: %v\n\n", in.Pending())

	props := core.NoBlackhole | core.WaypointEnforcement

	// The naive one-shot update.
	oneShot := core.OneShot(in)
	report := verify.Schedule(in, oneShot, props, verify.Options{})
	fmt.Println("one-shot:", report)
	if cex := report.FirstViolation(); cex != nil {
		fmt.Printf("  interleaving: switches %v updated first\n", in.StateNodes(cex.Updated))
		fmt.Printf("  packet walk:  %v — %s\n\n", cex.Walk, explain(cex, firewall))
	}

	// WayUp.
	sched, err := core.WayUp(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wayup:", sched)
	fmt.Println("      ", verify.Guarantees(in, sched, verify.Options{}))

	// A harder instance: switch 2 sits before the firewall on the old
	// path but after it on the new one (the "dangerous" class) — WayUp
	// must hold it back until the source is re-routed.
	fmt.Println()
	hard := core.MustInstance(topo.Path{1, 2, 4, 6, 8}, topo.Path{1, 4, 2, 6, 8}, 4)
	fmt.Printf("dangerous-switch instance: %v\n", hard)
	hardSched, err := core.WayUp(hard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wayup:", hardSched)
	fmt.Println("      ", verify.Guarantees(hard, hardSched, verify.Options{}))
	if hardSched.LoopFreedomCompromised {
		fmt.Println("       loop freedom was infeasible alongside waypoint enforcement (HotNets'14);")
		fmt.Println("       waypoint enforcement is preserved throughout")
	}

	// Joint feasibility, decided exactly. When the exact solver says
	// feasible but WayUp compromised, the heuristic's fixed phase order
	// missed a schedule the optimal search finds — run core.Optimal for
	// the minimal-round one.
	jointProps := core.NoBlackhole | core.WaypointEnforcement | core.RelaxedLoopFreedom
	feasible, err := core.Feasible(hard, jointProps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact solver: waypoint+loop-freedom jointly feasible? %v\n", feasible)
	if feasible && hardSched.LoopFreedomCompromised {
		opt, err := core.Optimal(hard, jointProps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("optimal:", opt)
		fmt.Println("        ", verify.Schedule(hard, opt, jointProps, verify.Options{}))
	}
}

func explain(cex *core.CounterExample, firewall topo.NodeID) string {
	switch {
	case cex.Violated.Has(core.WaypointEnforcement):
		return fmt.Sprintf("delivered WITHOUT crossing the firewall s%d", firewall)
	case cex.Violated.Has(core.NoBlackhole):
		return "dropped at a switch with no rule yet"
	default:
		return cex.Violated.String()
	}
}
