// Quickstart: compute and verify a transiently consistent update
// schedule with the core library — no network involved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tsu/internal/core"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

func main() {
	// A policy change: traffic moves from the old route to the new
	// route; both pass the waypoint (switch 3, say a firewall).
	old := topo.Path{1, 2, 3, 4, 5}
	new_ := topo.Path{1, 6, 3, 7, 5}
	instance, err := core.NewInstance(old, new_, 3)
	if err != nil {
		log.Fatal(err)
	}

	// One-shot (what a naive controller does): provably unsafe.
	oneShot, err := core.ScheduleByName(instance, core.AlgoOneShot, 0)
	if err != nil {
		log.Fatal(err)
	}
	report := verify.Schedule(instance, oneShot,
		core.NoBlackhole|core.WaypointEnforcement|core.RelaxedLoopFreedom, verify.Options{})
	fmt.Println(report)
	if cex := report.FirstViolation(); cex != nil {
		fmt.Printf("  e.g. with switches %v already flipped the walk is %v\n",
			instance.StateNodes(cex.Updated), cex.Walk)
	}

	// WayUp: rounds separated by barriers, transiently secure. An empty
	// algorithm name picks the instance's default (wayup here — the
	// policy has a waypoint).
	schedule, err := core.ScheduleByName(instance, "", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(schedule)
	report = verify.Guarantees(instance, schedule, verify.Options{})
	fmt.Println(report)

	// Peacock: relaxed loop freedom when there is no waypoint to guard.
	peacock, err := core.ScheduleByName(instance, core.AlgoPeacock, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(peacock)
	fmt.Println(verify.Guarantees(instance, peacock, verify.Options{}))
}
