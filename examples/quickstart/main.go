// Quickstart: compute and verify a transiently consistent update
// schedule with the core library — no network involved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tsu/internal/core"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

func main() {
	// A policy change: traffic moves from the old route to the new
	// route; both pass the waypoint (switch 3, say a firewall).
	old := topo.Path{1, 2, 3, 4, 5}
	new_ := topo.Path{1, 6, 3, 7, 5}
	instance, err := core.NewInstance(old, new_, 3)
	if err != nil {
		log.Fatal(err)
	}

	// One-shot (what a naive controller does): provably unsafe.
	oneShot := core.OneShot(instance)
	report := verify.Schedule(instance, oneShot,
		core.NoBlackhole|core.WaypointEnforcement|core.RelaxedLoopFreedom, verify.Options{})
	fmt.Println(report)
	if cex := report.FirstViolation(); cex != nil {
		fmt.Printf("  e.g. with %d rules already flipped the walk is %v\n",
			len(cex.Updated), cex.Walk)
	}

	// WayUp: rounds separated by barriers, transiently secure.
	schedule, err := core.WayUp(instance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(schedule)
	report = verify.Guarantees(instance, schedule, verify.Options{})
	fmt.Println(report)

	// Peacock: relaxed loop freedom when there is no waypoint to guard.
	peacock, err := core.Peacock(instance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(peacock)
	fmt.Println(verify.Guarantees(instance, peacock, verify.Options{}))
}
